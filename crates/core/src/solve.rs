//! Exact equilibrium computation on **arbitrary** graphs via linear
//! programming.
//!
//! The constructive theory covers bipartite graphs (Theorem 5.1) and
//! perfect-matching graphs (covering NE); odd cycles with a pendant
//! vertex, for instance, have neither. But the defender-vs-one-attacker
//! game is a finite zero-sum matrix game (`M[t][v] = 1` iff tuple `t`
//! covers vertex `v`), so its exact value and optimal strategies come out
//! of [`defender_lp`]. Because the tuple player's payoff is *linear in the
//! sum* of the attackers' distributions and the attackers do not interact,
//! the pair (optimal defender mixture, every attacker playing the optimal
//! attacker mixture) is a Nash equilibrium of `Π_k(G)` for **every** `ν`,
//! with defender gain `ν · value`.
//!
//! The matrix has `C(m, k)` columns, so this is for small instances —
//! exactly the regime the constructive algorithms do *not* cover.

use defender_game::MixedStrategy;
use defender_graph::VertexId;
use defender_lp::solve_zero_sum_hinted;
use defender_num::Ratio;

use crate::model::{MixedConfig, TupleGame};
use crate::tuple::{all_tuples, Tuple};
use crate::CoreError;

/// An exact equilibrium computed by linear programming.
#[derive(Clone, Debug)]
pub struct ExactEquilibrium {
    /// The single-attacker game value: the probability an optimally
    /// playing defender catches an optimally hiding attacker.
    pub value: Ratio,
    /// The symmetric Nash equilibrium of `Π_k(G)` built from the optimal
    /// strategies (every attacker plays the same optimal mixture).
    pub config: MixedConfig,
    /// Defender gain `ν · value`.
    pub defender_gain: Ratio,
}

/// Solves `Π_k(G)` exactly via the zero-sum LP.
///
/// # Errors
///
/// - [`CoreError::TooLarge`] when `C(m, k) > tuple_limit`;
/// - shape errors from the LP layer are converted to
///   [`CoreError::TooLarge`] (they cannot occur for valid games).
pub fn solve_exact(
    game: &TupleGame<'_>,
    tuple_limit: usize,
) -> Result<ExactEquilibrium, CoreError> {
    solve_exact_hinted(game, tuple_limit, None)
}

/// [`solve_exact`] with an optional warm-start hint.
///
/// The hint is a pair `(tuple_support, vertex_support)` of index sets —
/// typically the supports of a known equilibrium of an isomorphic
/// instance. Tuple indices refer to the enumeration order of
/// [`all_tuples`]; vertex indices are graph vertex indices. A good hint
/// lets the LP start from the optimal basis and finish without a single
/// simplex pivot; a bad or stale hint is rejected inside the LP layer
/// and the solve falls back to the cold path, so correctness never
/// depends on the hint.
///
/// # Errors
///
/// Same as [`solve_exact`].
pub fn solve_exact_hinted(
    game: &TupleGame<'_>,
    tuple_limit: usize,
    hint: Option<(&[usize], &[usize])>,
) -> Result<ExactEquilibrium, CoreError> {
    let graph = game.graph();
    let tuples = all_tuples(graph, game.k(), tuple_limit)?;
    // Rows: defender tuples (maximizer). Columns: attacker vertices.
    let matrix: Vec<Vec<Ratio>> = tuples
        .iter()
        .map(|t| {
            let mut row = vec![Ratio::ZERO; graph.vertex_count()];
            for v in t.vertices(graph) {
                // lint: allow(index) row is sized by vertex_count; VertexId::index is in range
                row[v.index()] = Ratio::ONE;
            }
            row
        })
        .collect();
    let solution = solve_zero_sum_hinted(&matrix, hint).map_err(|e| CoreError::TooLarge {
        what: format!("zero-sum LP ({e})"),
        limit: tuple_limit,
    })?;

    let defender_entries: Vec<(Tuple, Ratio)> = tuples
        .into_iter()
        .zip(solution.row_strategy.iter().copied())
        .filter(|(_, p)| !p.is_zero())
        .collect();
    let attacker_entries: Vec<(VertexId, Ratio)> = graph
        .vertices()
        .zip(solution.col_strategy.iter().copied())
        .filter(|(_, p)| !p.is_zero())
        .collect();
    let defender =
        // lint: allow(panic) the LP returns a normalized distribution
        MixedStrategy::from_entries(defender_entries).expect("LP strategies are distributions");
    let attacker =
        // lint: allow(panic) the LP returns a normalized distribution
        MixedStrategy::from_entries(attacker_entries).expect("LP strategies are distributions");
    let config = MixedConfig::symmetric(game, attacker, defender)?;
    let defender_gain = solution.value * Ratio::from(game.attacker_count());
    Ok(ExactEquilibrium {
        value: solution.value,
        config,
        defender_gain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::a_tuple_bipartite;
    use crate::covering_ne::covering_ne;
    use crate::exhaustive::GameAdapter;
    use crate::payoff;
    use defender_graph::{generators, GraphBuilder};

    const LIMIT: usize = 100_000;

    #[test]
    fn value_matches_k_matching_on_bipartite() {
        for (graph, k, is_size) in [
            (generators::path(4), 1usize, 2usize),
            (generators::cycle(6), 1, 3),
            (generators::cycle(6), 2, 3),
            (generators::star(5), 2, 5),
            (generators::complete_bipartite(2, 4), 3, 4),
        ] {
            let game = TupleGame::new(&graph, k, 1).unwrap();
            let exact = solve_exact(&game, LIMIT).unwrap();
            assert_eq!(
                exact.value,
                Ratio::new(k as i64, is_size as i64),
                "{graph:?}, k = {k}: constant-sum games have a unique value"
            );
            // And matches the constructive equilibrium's gain.
            let ne = a_tuple_bipartite(&game).unwrap();
            assert_eq!(exact.defender_gain, ne.defender_gain());
        }
    }

    #[test]
    fn value_matches_covering_on_perfect_matching_graphs() {
        for (graph, k) in [
            (generators::complete(4), 1usize),
            (generators::complete(4), 2),
            (generators::petersen(), 1),
        ] {
            let game = TupleGame::new(&graph, k, 1).unwrap();
            let exact = solve_exact(&game, LIMIT).unwrap();
            let cov = covering_ne(&game).unwrap();
            assert_eq!(
                exact.defender_gain,
                cov.defender_gain(),
                "{graph:?}, k = {k}"
            );
        }
    }

    #[test]
    fn solves_graphs_outside_every_constructive_family() {
        // C5: odd (no bipartition) but 2-regular; uniform/uniform is the
        // equilibrium with value 2k/5.
        let c5 = generators::cycle(5);
        for k in 1..=2usize {
            let game = TupleGame::new(&c5, k, 1).unwrap();
            let exact = solve_exact(&game, LIMIT).unwrap();
            assert_eq!(exact.value, Ratio::new(2 * k as i64, 5), "C5, k = {k}");
        }

        // A "tadpole": triangle with a pendant path — no perfect matching
        // (n odd), not bipartite. Neither construction applies; the LP
        // still delivers, and first principles certify it.
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2); // triangle
        b.add_edge(2, 3).add_edge(3, 4); // tail
        let tadpole = b.build();
        let game = TupleGame::new(&tadpole, 1, 1).unwrap();
        let exact = solve_exact(&game, LIMIT).unwrap();
        let adapter = GameAdapter::new(&game, LIMIT).unwrap();
        let truth = adapter.verify(&exact.config);
        assert!(truth.is_equilibrium(), "deviations: {:?}", truth.deviations);
        assert!(exact.value > Ratio::ZERO && exact.value < Ratio::ONE);
    }

    #[test]
    fn lp_equilibrium_is_ne_for_many_attackers() {
        // The ν-fold symmetric lift stays an equilibrium.
        let graph = generators::cycle(5);
        let game = TupleGame::new(&graph, 1, 3).unwrap();
        let exact = solve_exact(&game, LIMIT).unwrap();
        let adapter = GameAdapter::new(&game, LIMIT).unwrap();
        let truth = adapter.verify(&exact.config);
        assert!(truth.is_equilibrium(), "deviations: {:?}", truth.deviations);
        assert_eq!(
            payoff::expected_ip_tuple_player(&game, &exact.config),
            exact.defender_gain
        );
    }

    #[test]
    fn hinted_solve_reproduces_the_cold_solve_bit_for_bit() {
        for (graph, k) in [
            (generators::cycle(5), 1usize),
            (generators::petersen(), 1),
            (generators::complete(4), 2),
        ] {
            let game = TupleGame::new(&graph, k, 1).unwrap();
            let cold = solve_exact(&game, LIMIT).unwrap();
            // Read the supports off the cold solution: tuple indices in
            // all_tuples order, vertex indices directly.
            let tuples = all_tuples(&graph, k, LIMIT).unwrap();
            let tuple_support: Vec<usize> = tuples
                .iter()
                .enumerate()
                .filter(|(_, t)| !cold.config.defender().probability(t).is_zero())
                .map(|(i, _)| i)
                .collect();
            let vertex_support: Vec<usize> = graph
                .vertices()
                .filter(|v| !cold.config.attacker(0).probability(v).is_zero())
                .map(|v| v.index())
                .collect();
            let warm =
                solve_exact_hinted(&game, LIMIT, Some((&tuple_support, &vertex_support))).unwrap();
            assert_eq!(warm.value, cold.value, "{graph:?}, k = {k}");
            assert_eq!(warm.defender_gain, cold.defender_gain);
            assert_eq!(
                warm.config.attacker(0).iter().collect::<Vec<_>>(),
                cold.config.attacker(0).iter().collect::<Vec<_>>()
            );
            assert_eq!(
                warm.config.defender().iter().collect::<Vec<_>>(),
                cold.config.defender().iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn garbage_hints_never_change_the_answer() {
        let graph = generators::cycle(5);
        let game = TupleGame::new(&graph, 1, 1).unwrap();
        let cold = solve_exact(&game, LIMIT).unwrap();
        for hint in [
            (vec![0usize, 99], vec![0usize]),     // out-of-range tuple
            (vec![0], vec![42]),                  // out-of-range vertex
            (vec![], vec![]),                     // empty supports
            ((0..5).collect(), (0..5).collect()), // everything supported
        ] {
            let warm = solve_exact_hinted(&game, LIMIT, Some((&hint.0, &hint.1))).unwrap();
            assert_eq!(warm.value, cold.value, "hint {hint:?}");
        }
    }

    #[test]
    fn guard_fires() {
        let graph = generators::complete(9); // m = 36
        let game = TupleGame::new(&graph, 9, 1).unwrap();
        assert!(matches!(
            solve_exact(&game, 1_000),
            Err(CoreError::TooLarge { .. })
        ));
    }

    #[test]
    fn wheel_value_is_nontrivial() {
        // W5 (hub + C5): not bipartite, n = 6 even; PM exists? Hub matches
        // a rim vertex, remaining C4-minus... rim is C5 minus one vertex =
        // P4, which has a PM. So covering applies; check agreement.
        let graph = generators::wheel(5);
        let game = TupleGame::new(&graph, 1, 1).unwrap();
        let exact = solve_exact(&game, LIMIT).unwrap();
        let cov = covering_ne(&game).unwrap();
        assert_eq!(exact.defender_gain, cov.defender_gain());
        assert_eq!(exact.value, Ratio::new(2, 6));
    }
}
