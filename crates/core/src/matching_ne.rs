//! Matching Nash equilibria of the Edge model (`Π_1(G)`): Definition 2.2,
//! Lemma 2.1, Theorem 2.2 and the construction algorithm `A` of \[7\].
//!
//! A *matching configuration* has (1) an independent attacker support and
//! (2) each support vertex incident to exactly one support edge. Lemma 2.1
//! upgrades such a configuration to a Nash equilibrium (uniform play) when
//! the defender's support is an edge cover and the attacker support covers
//! it. Theorem 2.2 characterizes existence by a partition `V = IS ∪ VC`
//! with `IS` independent and `VC` matchable into `IS` (the corrected
//! expander condition — DESIGN.md §5.1).

use defender_game::MixedStrategy;
use defender_graph::{
    edge_cover, independent_set, vertex_cover, EdgeId, EdgeSet, Graph, VertexId, VertexSet,
};
use defender_matching::hall::{matching_into_complement, HallOutcome};
use defender_num::Ratio;

use crate::model::{EdgeGame, MixedConfig};
use crate::payoff;
use crate::tuple::Tuple;
use crate::CoreError;

/// The support shape of a matching configuration (Definition 2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatchingConfig {
    /// `D(vp)` — the common support of every vertex player.
    pub vp_support: VertexSet,
    /// `D(tp)` — the edge player's support.
    pub tp_support: EdgeSet,
}

impl MatchingConfig {
    /// Checks Definition 2.2 against a graph: (1) `vp_support` is
    /// independent, (2) each support vertex is incident to exactly one
    /// support edge.
    #[must_use]
    pub fn is_matching_configuration(&self, graph: &Graph) -> bool {
        if !independent_set::is_independent_set(graph, &self.vp_support) {
            return false;
        }
        let mult = edge_cover::cover_multiplicity(graph, &self.tp_support);
        self.vp_support.iter().all(|v| mult[v.index()] == 1)
    }

    /// Checks the additional conditions of Lemma 2.1: `tp_support` is an
    /// edge cover of `G` and `vp_support` covers the subgraph it spans.
    #[must_use]
    pub fn satisfies_lemma_2_1(&self, graph: &Graph) -> bool {
        edge_cover::is_edge_cover(graph, &self.tp_support)
            && vertex_cover::covers_edges(graph, &self.vp_support, &self.tp_support)
    }
}

/// A matching Nash equilibrium of `Π_1(G)`: uniform distributions on a
/// matching configuration satisfying Lemma 2.1.
#[derive(Clone, Debug)]
pub struct MatchingNe {
    config: MixedConfig,
    supports: MatchingConfig,
    defender_gain: Ratio,
}

impl MatchingNe {
    /// The mixed configuration (uniform on both supports).
    #[must_use]
    pub fn config(&self) -> &MixedConfig {
        &self.config
    }

    /// The underlying supports.
    #[must_use]
    pub fn supports(&self) -> &MatchingConfig {
        &self.supports
    }

    /// `IP_tp` — the defender's expected gain, `ν / |D(vp)|`
    /// (Corollary 4.10's `k = 1` base case).
    #[must_use]
    pub fn defender_gain(&self) -> Ratio {
        self.defender_gain
    }
}

/// Lemma 2.1: turns a matching configuration that satisfies the covering
/// conditions into a Nash equilibrium by applying uniform distributions.
///
/// # Errors
///
/// - [`CoreError::NotEdgeModel`] when `game.k() != 1`;
/// - [`CoreError::NotKMatching`] when Definition 2.2 or the covering
///   conditions fail.
pub fn matching_ne_from_config(
    game: &EdgeGame<'_>,
    supports: MatchingConfig,
) -> Result<MatchingNe, CoreError> {
    if !game.is_edge_model() {
        return Err(CoreError::NotEdgeModel { k: game.k() });
    }
    let graph = game.graph();
    if !supports.is_matching_configuration(graph) {
        return Err(CoreError::NotKMatching {
            reason: "Definition 2.2 fails (support not independent or a support \
                     vertex lies on several support edges)"
                .into(),
        });
    }
    if !supports.satisfies_lemma_2_1(graph) {
        return Err(CoreError::NotKMatching {
            reason: "Lemma 2.1 covering conditions fail".into(),
        });
    }
    let vp = MixedStrategy::uniform(supports.vp_support.clone());
    let tp = MixedStrategy::uniform(
        supports
            .tp_support
            .iter()
            .map(|&e| Tuple::single(e))
            .collect(),
    );
    let config = MixedConfig::symmetric(game, vp, tp)?;
    let defender_gain = payoff::expected_ip_tuple_player(game, &config);
    Ok(MatchingNe {
        config,
        supports,
        defender_gain,
    })
}

/// Theorem 2.2 (corrected): whether the partition `(IS, V \ IS)` admits a
/// matching NE — `IS` independent and `VC` matchable into `IS`.
#[must_use]
pub fn partition_admits_matching_ne(graph: &Graph, is: &[VertexId]) -> bool {
    let mut scratch = Vec::new();
    partition_admits_with_scratch(graph, is, &mut scratch)
}

/// [`partition_admits_matching_ne`] with a caller-owned scratch buffer for
/// the independence test, so sweeps over many candidate sets (like
/// [`find_partition_small`]) stay allocation-free word arithmetic.
fn partition_admits_with_scratch(graph: &Graph, is: &[VertexId], scratch: &mut Vec<u64>) -> bool {
    if !independent_set::is_independent_set_with_scratch(graph, is, scratch) {
        return false;
    }
    let vc = vertex_cover::complement(graph, is);
    matching_into_complement(graph, &vc).is_saturated()
}

/// The construction algorithm `A(Π_1(G), IS, VC)` of \[7\]:
///
/// 1. match `VC` into `IS` (Hopcroft–Karp; exists by the partition
///    condition) — these matching edges enter the defender's support;
/// 2. each `IS` vertex left unmatched picks one arbitrary incident edge
///    (its other endpoint is necessarily in `VC`, `IS` being independent);
/// 3. both players play uniformly: attackers on `IS`, defender on the
///    collected edges.
///
/// Runs in `O(m√n)` (dominated by step 1).
///
/// # Errors
///
/// - [`CoreError::NotEdgeModel`] when `game.k() != 1`;
/// - [`CoreError::InvalidPartition`] when `IS` is not independent, the
///   sets do not partition `V`, or the Hall condition fails (the error
///   carries a violator witness).
pub fn algorithm_a(
    game: &EdgeGame<'_>,
    is: &[VertexId],
    vc: &[VertexId],
) -> Result<MatchingNe, CoreError> {
    if !game.is_edge_model() {
        return Err(CoreError::NotEdgeModel { k: game.k() });
    }
    let graph = game.graph();
    check_partition(graph, is, vc)?;

    let matching = match matching_into_complement(graph, vc) {
        HallOutcome::Saturated(m) => m,
        HallOutcome::Deficient { violator, .. } => {
            return Err(CoreError::InvalidPartition {
                reason: format!(
                    "G is not a VC-expander into IS: violator {violator:?} has too \
                     small an outside neighborhood"
                ),
            });
        }
    };

    let mut support: Vec<EdgeId> = Vec::with_capacity(is.len());
    let mut matched_is = vec![false; graph.vertex_count()];
    for &u in vc {
        // lint: allow(panic) Konig-style saturated matching covers every VC vertex
        let partner = matching.partner(u).expect("saturated matching covers VC");
        matched_is[partner.index()] = true;
        support.push(
            graph
                .find_edge(u, partner)
                // lint: allow(panic) matched pairs are edges of the graph
                .expect("matched pairs are edges"),
        );
    }
    for &v in is {
        if !matched_is[v.index()] {
            // IS is independent, so every neighbor of v lies in VC.
            let (_, e) = graph.incidence(v)[0];
            support.push(e);
        }
    }
    support.sort_unstable();
    support.dedup();

    matching_ne_from_config(
        game,
        MatchingConfig {
            vp_support: {
                let mut s = is.to_vec();
                s.sort_unstable();
                s
            },
            tp_support: support,
        },
    )
}

/// Validates that `(is, vc)` partitions `V` with `is` independent.
fn check_partition(graph: &Graph, is: &[VertexId], vc: &[VertexId]) -> Result<(), CoreError> {
    let mut seen = vec![0u8; graph.vertex_count()];
    for &v in is {
        seen[v.index()] += 1;
    }
    for &v in vc {
        seen[v.index()] += 1;
    }
    if seen.iter().any(|&c| c != 1) {
        return Err(CoreError::InvalidPartition {
            reason: "IS and VC must partition V".into(),
        });
    }
    if !independent_set::is_independent_set(graph, is) {
        return Err(CoreError::InvalidPartition {
            reason: "IS is not an independent set".into(),
        });
    }
    Ok(())
}

/// Searches for a partition admitting a matching NE by brute force over
/// independent sets (cross-validation of Theorem 2.2 on small graphs).
///
/// Returns the first admitting `IS` in subset order, or `None` when the
/// graph admits no matching NE at all.
///
/// # Panics
///
/// Panics if the graph has more than 20 vertices.
#[must_use]
pub fn find_partition_small(graph: &Graph) -> Option<VertexSet> {
    let n = graph.vertex_count();
    assert!(
        n <= 20,
        "brute-force partition search limited to 20 vertices, got {n}"
    );
    let mut scratch = Vec::new();
    for mask in 0u32..(1u32 << n) {
        let is: VertexSet = (0..n)
            .filter(|&i| mask & (1 << i) != 0)
            .map(VertexId::new)
            .collect();
        if partition_admits_with_scratch(graph, &is, &mut scratch) {
            return Some(is);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterization::{verify_mixed_ne, VerificationMode};
    use crate::model::TupleGame;
    use defender_graph::generators;

    #[test]
    fn path4_construction_is_verified_ne() {
        let g = generators::path(4);
        let game = TupleGame::edge_model(&g, 3).unwrap();
        let is: Vec<VertexId> = [0, 3].into_iter().map(VertexId::new).collect();
        let vc: Vec<VertexId> = [1, 2].into_iter().map(VertexId::new).collect();
        let ne = algorithm_a(&game, &is, &vc).unwrap();
        let report = verify_mixed_ne(&game, ne.config(), VerificationMode::Auto).unwrap();
        assert!(report.is_equilibrium(), "{:?}", report.failures());
        assert_eq!(ne.defender_gain(), Ratio::new(3, 2), "ν/|IS| = 3/2");
    }

    #[test]
    fn star_construction() {
        // Star K_{1,4}: IS = leaves, VC = {hub}. Hub matched to one leaf;
        // remaining leaves attach their only edge. Support = all 4 spokes.
        let g = generators::star(4);
        let game = TupleGame::edge_model(&g, 2).unwrap();
        let is: Vec<VertexId> = (1..=4).map(VertexId::new).collect();
        let vc = vec![VertexId::new(0)];
        let ne = algorithm_a(&game, &is, &vc).unwrap();
        assert_eq!(ne.supports().tp_support.len(), 4);
        assert_eq!(ne.defender_gain(), Ratio::new(2, 4));
        let report = verify_mixed_ne(&game, ne.config(), VerificationMode::Auto).unwrap();
        assert!(report.is_equilibrium(), "{:?}", report.failures());
    }

    #[test]
    fn even_cycle_construction() {
        let g = generators::cycle(6);
        let game = TupleGame::edge_model(&g, 6).unwrap();
        let is: Vec<VertexId> = [0, 2, 4].into_iter().map(VertexId::new).collect();
        let vc: Vec<VertexId> = [1, 3, 5].into_iter().map(VertexId::new).collect();
        let ne = algorithm_a(&game, &is, &vc).unwrap();
        let report = verify_mixed_ne(&game, ne.config(), VerificationMode::Auto).unwrap();
        assert!(report.is_equilibrium(), "{:?}", report.failures());
        assert_eq!(ne.defender_gain(), Ratio::from(2), "ν/|IS| = 6/3");
    }

    #[test]
    fn k3_has_no_matching_ne() {
        // The DESIGN.md §5.1 pin: K3 admits no partition at all.
        let g = generators::complete(3);
        assert_eq!(find_partition_small(&g), None);
        let game = TupleGame::edge_model(&g, 1).unwrap();
        let is = vec![VertexId::new(0)];
        let vc: Vec<VertexId> = [1, 2].into_iter().map(VertexId::new).collect();
        let err = algorithm_a(&game, &is, &vc).unwrap_err();
        assert!(matches!(err, CoreError::InvalidPartition { .. }));
    }

    #[test]
    fn odd_cycles_admit_no_matching_ne() {
        for n in [3usize, 5, 7] {
            assert_eq!(find_partition_small(&generators::cycle(n)), None, "C{n}");
        }
    }

    #[test]
    fn bipartite_graphs_admit_matching_ne() {
        for g in [
            generators::path(6),
            generators::cycle(8),
            generators::complete_bipartite(2, 4),
            generators::grid(2, 3),
            generators::star(4),
        ] {
            assert!(find_partition_small(&g).is_some(), "{g:?}");
        }
    }

    #[test]
    fn partition_shape_errors() {
        let g = generators::path(4);
        let game = TupleGame::edge_model(&g, 1).unwrap();
        // Overlapping sets.
        let err = algorithm_a(&game, &[VertexId::new(0)], &[VertexId::new(0)]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidPartition { .. }));
        // Dependent IS.
        let is: Vec<VertexId> = [0, 1].into_iter().map(VertexId::new).collect();
        let vc: Vec<VertexId> = [2, 3].into_iter().map(VertexId::new).collect();
        let err = algorithm_a(&game, &is, &vc).unwrap_err();
        assert!(matches!(err, CoreError::InvalidPartition { .. }));
    }

    #[test]
    fn wrong_width_rejected() {
        let g = generators::path(4);
        let game = TupleGame::new(&g, 2, 1).unwrap();
        let err = algorithm_a(&game, &[VertexId::new(0)], &[VertexId::new(1)]).unwrap_err();
        assert!(matches!(err, CoreError::NotEdgeModel { k: 2 }));
    }

    #[test]
    fn matching_config_predicates() {
        let g = generators::path(4);
        let good = MatchingConfig {
            vp_support: vec![VertexId::new(0), VertexId::new(3)],
            tp_support: vec![EdgeId::new(0), EdgeId::new(2)],
        };
        assert!(good.is_matching_configuration(&g));
        assert!(good.satisfies_lemma_2_1(&g));

        let dependent = MatchingConfig {
            vp_support: vec![VertexId::new(0), VertexId::new(1)],
            tp_support: vec![EdgeId::new(0), EdgeId::new(2)],
        };
        assert!(!dependent.is_matching_configuration(&g));

        let double_incidence = MatchingConfig {
            vp_support: vec![VertexId::new(1)],
            tp_support: vec![EdgeId::new(0), EdgeId::new(1)],
        };
        assert!(!double_incidence.is_matching_configuration(&g));

        let not_cover = MatchingConfig {
            vp_support: vec![VertexId::new(0)],
            tp_support: vec![EdgeId::new(0)],
        };
        assert!(not_cover.is_matching_configuration(&g));
        assert!(!not_cover.satisfies_lemma_2_1(&g));
    }
}
