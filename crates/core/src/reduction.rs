//! The two-way polynomial-time reduction of Theorem 4.5 between matching
//! Nash equilibria of `Π_1(G)` and k-matching Nash equilibria of `Π_k(G)`.
//!
//! - [`restrict_to_matching`] (Lemma 4.6): flatten the support tuples to
//!   their edge set and play uniformly — a matching NE of the Edge model.
//! - [`expand_to_k_matching`] (Lemma 4.8): label the matching NE's support
//!   edges `e_0 … e_{E−1}` and slide a width-`k` window cyclically,
//!   collecting `δ = E / gcd(E, k)` tuples; every edge lands in exactly
//!   `k / gcd(E, k)` of them (Claim 4.9), so condition (3) of
//!   Definition 4.1 holds.
//!
//! The gain transforms by exactly the factor `k` in both directions
//! (Corollaries 4.7 and 4.10): `IP_tp(Π_k) = k · IP_tp(Π_1)` — the paper's
//! headline "power of the defender".

use defender_num::{gcd, Ratio};

use crate::k_matching::{k_matching_ne_from_config, KMatchingConfig, KMatchingNe};
use crate::matching_ne::{matching_ne_from_config, MatchingConfig, MatchingNe};
use crate::model::TupleGame;
use crate::tuple::Tuple;
use crate::CoreError;

/// Lemma 4.6: from a k-matching NE of `Π_k(G)`, a matching NE of `Π_1(G)`.
///
/// `D'(VP) := D(VP)`, `D'(tp) := E(D(tp))`, uniform distributions. Runs in
/// `O(|D(tp)|·k + n)`.
///
/// # Errors
///
/// Propagates shape errors when `edge_game` is not `Π_1` over the same
/// graph (i.e. [`CoreError::NotEdgeModel`]).
pub fn restrict_to_matching(
    edge_game: &TupleGame<'_>,
    ne: &KMatchingNe,
) -> Result<MatchingNe, CoreError> {
    let supports = MatchingConfig {
        vp_support: ne.supports().vp_support.clone(),
        tp_support: ne.supports().support_edges(),
    };
    matching_ne_from_config(edge_game, supports)
}

/// Lemma 4.8: from a matching NE of `Π_1(G)`, a k-matching NE of `Π_k(G)`
/// via the cyclic window construction.
///
/// # Errors
///
/// - [`CoreError::TupleWiderThanSupport`] when `k` exceeds the matching
///   NE's support size `E_num` — a tuple of `k` *distinct* edges cannot be
///   drawn from fewer (DESIGN.md §5.2; the paper's construction would
///   repeat edges here);
/// - k-matching validation errors (never expected for well-formed input —
///   they would indicate a broken invariant upstream).
pub fn expand_to_k_matching(
    tuple_game: &TupleGame<'_>,
    ne: &MatchingNe,
) -> Result<KMatchingNe, CoreError> {
    let k = tuple_game.k();
    let labeled = &ne.supports().tp_support;
    let e_num = labeled.len();
    if k > e_num {
        return Err(CoreError::TupleWiderThanSupport {
            k,
            support_size: e_num,
        });
    }
    let tuples = cyclic_tuples(e_num, k)
        .into_iter()
        .map(|window| {
            Tuple::new(window.into_iter().map(|i| labeled[i]).collect())
                // lint: allow(panic) cyclic windows with k <= E_num are distinct edges
                .expect("cyclic windows with k ≤ E_num have distinct edges")
        })
        .collect();
    let supports = KMatchingConfig {
        vp_support: ne.supports().vp_support.clone(),
        tuples,
    };
    k_matching_ne_from_config(tuple_game, supports)
}

/// The index windows of the cyclic construction: window `i` (0-based)
/// covers positions `i·k, i·k + 1, …, i·k + k − 1 (mod E_num)`, for
/// `i = 0 … δ − 1` with `δ = E_num / gcd(E_num, k)`.
///
/// # Panics
///
/// Panics if `k == 0` or `k > e_num`.
#[must_use]
pub fn cyclic_tuples(e_num: usize, k: usize) -> Vec<Vec<usize>> {
    assert!(
        k >= 1 && k <= e_num,
        "cyclic construction needs 1 ≤ k ≤ E_num"
    );
    let delta = support_tuple_count(e_num, k);
    (0..delta)
        // lint: allow(arith) e_num >= k >= 1 asserted above
        .map(|i| (0..k).map(|j| (i * k + j) % e_num).collect())
        .collect()
}

/// `δ = E_num / gcd(E_num, k)` — the number of tuples the construction
/// emits (the minimum achieving equal edge multiplicities, per Lemma 4.8).
#[must_use]
pub fn support_tuple_count(e_num: usize, k: usize) -> usize {
    e_num / gcd(e_num as u128, k as u128) as usize // lint: allow(arith) gcd with positive k is >= 1
}

/// Claim 4.9: each support edge belongs to exactly `k / gcd(E_num, k)`
/// tuples of the construction.
#[must_use]
pub fn per_edge_multiplicity(e_num: usize, k: usize) -> usize {
    k / gcd(e_num as u128, k as u128) as usize
}

/// Theorem 4.5, gain statement: the ratio `IP_tp(Π_k) / IP_tp(Π_1)` of the
/// two equilibria. Equals `k` exactly for every matching/k-matching pair
/// produced by the reduction (Corollaries 4.7 and 4.10).
#[must_use]
pub fn gain_ratio(k_ne: &KMatchingNe, edge_ne: &MatchingNe) -> Ratio {
    // lint: allow(arith) matching-NE defender gain is positive (Theorem 3.1)
    k_ne.defender_gain() / edge_ne.defender_gain()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterization::{verify_mixed_ne, VerificationMode};
    use crate::matching_ne::algorithm_a;
    use defender_graph::{generators, VertexId};

    fn even_cycle_matching_ne(game: &TupleGame<'_>, n: usize) -> MatchingNe {
        let is: Vec<VertexId> = (0..n).step_by(2).map(VertexId::new).collect();
        let vc: Vec<VertexId> = (0..n).skip(1).step_by(2).map(VertexId::new).collect();
        algorithm_a(game, &is, &vc).unwrap()
    }

    #[test]
    fn cyclic_windows_match_the_paper() {
        // E_num = 4, k = 2: gcd = 2, δ = 2: windows {0,1}, {2,3}.
        assert_eq!(cyclic_tuples(4, 2), vec![vec![0, 1], vec![2, 3]]);
        // E_num = 4, k = 3: gcd = 1, δ = 4 — wraps around.
        assert_eq!(
            cyclic_tuples(4, 3),
            vec![vec![0, 1, 2], vec![3, 0, 1], vec![2, 3, 0], vec![1, 2, 3]]
        );
        // k = E_num: a single all-edges tuple.
        assert_eq!(cyclic_tuples(3, 3), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn claim_4_9_multiplicities() {
        for e_num in 1..=12usize {
            for k in 1..=e_num {
                let windows = cyclic_tuples(e_num, k);
                assert_eq!(windows.len(), support_tuple_count(e_num, k));
                let mut counts = vec![0usize; e_num];
                for w in &windows {
                    let mut sorted = w.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    assert_eq!(sorted.len(), k, "distinct within a window");
                    for &i in w {
                        counts[i] += 1;
                    }
                }
                let expected = per_edge_multiplicity(e_num, k);
                assert!(
                    counts.iter().all(|&c| c == expected),
                    "E = {e_num}, k = {k}: counts {counts:?}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn expand_then_verify_on_c8() {
        let g = generators::cycle(8);
        let nu = 6;
        let edge_game = TupleGame::edge_model(&g, nu).unwrap();
        let edge_ne = even_cycle_matching_ne(&edge_game, 8);
        for k in 1..=4usize {
            let game_k = TupleGame::new(&g, k, nu).unwrap();
            let kne = expand_to_k_matching(&game_k, &edge_ne).unwrap();
            let report = verify_mixed_ne(&game_k, kne.config(), VerificationMode::Auto).unwrap();
            assert!(report.is_equilibrium(), "k = {k}: {:?}", report.failures());
            assert_eq!(
                gain_ratio(&kne, &edge_ne),
                Ratio::from(k),
                "Theorem 4.5 gain"
            );
            assert_eq!(kne.tuple_count(), support_tuple_count(4, k));
        }
    }

    #[test]
    fn expand_rejects_k_beyond_support() {
        // C4's matching NE has E_num = |IS| = 2 support edges; k = 3 ≤ m = 4
        // is a legal game width but the construction cannot serve it.
        let g = generators::cycle(4);
        let edge_game = TupleGame::edge_model(&g, 2).unwrap();
        let edge_ne = even_cycle_matching_ne(&edge_game, 4);
        let game_k = TupleGame::new(&g, 3, 2).unwrap();
        let err = expand_to_k_matching(&game_k, &edge_ne).unwrap_err();
        assert_eq!(
            err,
            CoreError::TupleWiderThanSupport {
                k: 3,
                support_size: 2
            }
        );
    }

    #[test]
    fn round_trip_k_to_1_to_k() {
        let g = generators::cycle(8);
        let nu = 4;
        let edge_game = TupleGame::edge_model(&g, nu).unwrap();
        let edge_ne = even_cycle_matching_ne(&edge_game, 8);
        let game_k = TupleGame::new(&g, 3, nu).unwrap();
        let kne = expand_to_k_matching(&game_k, &edge_ne).unwrap();

        // Lemma 4.6 back to the Edge model.
        let back = restrict_to_matching(&edge_game, &kne).unwrap();
        assert_eq!(
            back.supports(),
            edge_ne.supports(),
            "supports are preserved"
        );
        assert_eq!(back.defender_gain(), edge_ne.defender_gain());

        // And forward again: identical k-matching supports.
        let forward = expand_to_k_matching(&game_k, &back).unwrap();
        assert_eq!(forward.supports(), kne.supports());
    }

    #[test]
    fn restriction_from_handcrafted_k_ne() {
        use defender_graph::EdgeId;
        let g = generators::cycle(4);
        let game2 = TupleGame::new(&g, 2, 2).unwrap();
        let kcfg = crate::k_matching::KMatchingConfig {
            vp_support: vec![VertexId::new(0), VertexId::new(2)],
            tuples: vec![Tuple::new(vec![EdgeId::new(0), EdgeId::new(3)]).unwrap()],
        };
        let kne = k_matching_ne_from_config(&game2, kcfg).unwrap();
        let edge_game = TupleGame::edge_model(&g, 2).unwrap();
        let mne = restrict_to_matching(&edge_game, &kne).unwrap();
        assert_eq!(mne.supports().tp_support.len(), 2);
        assert_eq!(kne.defender_gain(), mne.defender_gain() * Ratio::from(2));
        let report = verify_mixed_ne(&edge_game, mne.config(), VerificationMode::Auto).unwrap();
        assert!(report.is_equilibrium(), "{:?}", report.failures());
    }

    #[test]
    fn gain_is_linear_in_k_across_families() {
        // The headline result, checked on stars and complete bipartite.
        let star = generators::star(5);
        let nu = 10;
        let edge_game = TupleGame::edge_model(&star, nu).unwrap();
        let is: Vec<VertexId> = (1..=5).map(VertexId::new).collect();
        let vc = vec![VertexId::new(0)];
        let edge_ne = algorithm_a(&edge_game, &is, &vc).unwrap();
        assert_eq!(edge_ne.defender_gain(), Ratio::new(10, 5));
        for k in 1..=5usize {
            let game_k = TupleGame::new(&star, k, nu).unwrap();
            let kne = expand_to_k_matching(&game_k, &edge_ne).unwrap();
            assert_eq!(
                kne.defender_gain(),
                Ratio::from(k) * Ratio::new(10, 5),
                "k = {k}"
            );
        }
    }
}
