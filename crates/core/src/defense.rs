//! Defense ratio and the Price of Defense, generalized to the Tuple model.
//!
//! Follow-up work to the Edge model defines the *defense ratio* of a
//! configuration as `DR(s) = ν / IP_tp(s)` — how far the defender sits
//! from the ideal of catching everyone — and the *Price of Defense* as its
//! best achievable value over Nash equilibria. For the Tuple model we
//! prove (and test) the width-`k` generalization:
//!
//! **Theorem (lower bound).** In every mixed NE of `Π_k(G)`,
//! `IP_tp ≤ 2k·ν/n`, i.e. `DR ≥ n/(2k)`.
//!
//! *Proof.* Summing hit probabilities over vertices counts each support
//! tuple at most `2k` times (a tuple has at most `2k` distinct
//! endpoints), so `Σ_v P(Hit(v)) ≤ 2k` and `min_v P(Hit(v)) ≤ 2k/n`. By
//! condition 2(a) of Theorem 3.4 every attacker is caught with exactly
//! that minimum probability, hence `IP_tp = ν·min_v P(Hit(v)) ≤ 2k·ν/n`. ∎
//!
//! Covering equilibria attain the bound with equality (gain `2k·ν/n`), so
//! graphs with perfect matchings are *defense optimal*:
//! `PoD(Π_k(G)) = n/(2k)`. k-matching equilibria have `DR = |IS|/k ≥
//! n/(2k)`, with equality iff `|IS| = n/2`.

use defender_num::Ratio;

use crate::gain::defender_gain;
use crate::model::{MixedConfig, TupleGame};

/// The defense ratio `ν / IP_tp` of a configuration (lower is better for
/// the defender; `1` means everyone is caught).
///
/// Returns `None` when the defender's expected gain is zero (ratio
/// undefined/infinite).
#[must_use]
pub fn defense_ratio(game: &TupleGame<'_>, config: &MixedConfig) -> Option<Ratio> {
    let gain = defender_gain(game, config);
    if gain.is_zero() {
        return None;
    }
    // lint: allow(arith) gain.is_zero() returned None above
    Some(Ratio::from(game.attacker_count()) / gain)
}

/// The universal lower bound `n/(2k)` on the defense ratio of any mixed
/// Nash equilibrium of `Π_k(G)` (see the module docs for the proof).
#[must_use]
pub fn defense_ratio_lower_bound(game: &TupleGame<'_>) -> Ratio {
    // lint: allow(arith) k >= 1 for a constructed TupleGame
    Ratio::from(game.graph().vertex_count()) / Ratio::from(2 * game.k())
}

/// Whether an equilibrium is *defense optimal*: its defense ratio meets
/// the `n/(2k)` bound exactly.
#[must_use]
pub fn is_defense_optimal(game: &TupleGame<'_>, config: &MixedConfig) -> bool {
    defense_ratio(game, config) == Some(defense_ratio_lower_bound(game))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::a_tuple_bipartite;
    use crate::characterization::{verify_mixed_ne, VerificationMode};
    use crate::covering_ne::covering_ne;
    use crate::model::TupleGame;
    use crate::solve::solve_exact;
    use defender_graph::{generators, GraphBuilder};

    #[test]
    fn covering_equilibria_are_defense_optimal() {
        for (graph, k) in [
            (generators::cycle(8), 2usize),
            (generators::complete(6), 3),
            (generators::petersen(), 2),
            (generators::grid(4, 4), 4),
        ] {
            let game = TupleGame::new(&graph, k, 5).unwrap();
            let ne = covering_ne(&game).unwrap();
            assert!(is_defense_optimal(&game, ne.config()), "{graph:?}, k = {k}");
            assert_eq!(
                defense_ratio(&game, ne.config()),
                Some(defense_ratio_lower_bound(&game))
            );
        }
    }

    #[test]
    fn k_matching_ratio_is_is_over_k() {
        let graph = generators::star(6); // |IS| = 6, n = 7
        let game = TupleGame::new(&graph, 2, 4).unwrap();
        let ne = a_tuple_bipartite(&game).unwrap();
        assert_eq!(defense_ratio(&game, ne.config()), Some(Ratio::new(6, 2)));
        // |IS| = 6 > n/2 = 7/2 → strictly above the bound → not optimal.
        assert!(!is_defense_optimal(&game, ne.config()));
        assert!(defense_ratio(&game, ne.config()).unwrap() > defense_ratio_lower_bound(&game));
    }

    #[test]
    fn bound_holds_for_every_verified_equilibrium() {
        // Sweep all equilibrium families we can construct and the LP
        // solutions on odd instances: none beats n/(2k).
        let instances: Vec<(defender_graph::Graph, usize)> = vec![
            (generators::path(6), 2),
            (generators::cycle(5), 1),
            (generators::cycle(7), 2),
            (generators::star(4), 2),
            (generators::complete_bipartite(2, 3), 2),
        ];
        for (graph, k) in instances {
            let game = TupleGame::new(&graph, k, 1).unwrap();
            let exact = solve_exact(&game, 100_000).unwrap();
            let ratio = defense_ratio(&game, &exact.config).expect("positive value");
            assert!(
                ratio >= defense_ratio_lower_bound(&game),
                "{graph:?}, k = {k}: DR {ratio} below the bound"
            );
        }
    }

    #[test]
    fn bound_is_tight_only_with_perfect_matchings() {
        // A star has no perfect matching; its exact equilibrium stays
        // strictly above the bound.
        let graph = generators::star(4);
        let game = TupleGame::new(&graph, 1, 1).unwrap();
        let exact = solve_exact(&game, 100_000).unwrap();
        let ratio = defense_ratio(&game, &exact.config).unwrap();
        assert!(ratio > defense_ratio_lower_bound(&game));
    }

    #[test]
    fn ratio_undefined_at_zero_gain() {
        use defender_game::MixedStrategy;
        use defender_graph::{EdgeId, VertexId};
        // Defender on edge (0,1), attacker hiding at v3: gain 0.
        let graph = generators::path(4);
        let game = TupleGame::new(&graph, 1, 1).unwrap();
        let config = crate::model::MixedConfig::symmetric(
            &game,
            MixedStrategy::pure(VertexId::new(3)),
            MixedStrategy::pure(crate::tuple::Tuple::single(EdgeId::new(0))),
        )
        .unwrap();
        assert_eq!(defense_ratio(&game, &config), None);
    }

    #[test]
    fn theorem_statement_cross_checked_by_characterization() {
        // Any configuration passing the Theorem 3.4 verifier obeys the
        // bound (sanity for the proof in the module docs).
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(0, 3);
        let graph = b.build(); // C4
        let game = TupleGame::new(&graph, 1, 2).unwrap();
        let ne = a_tuple_bipartite(&game).unwrap();
        let report = verify_mixed_ne(&game, ne.config(), VerificationMode::Auto).unwrap();
        assert!(report.is_equilibrium());
        assert!(defense_ratio(&game, ne.config()).unwrap() >= defense_ratio_lower_bound(&game));
    }
}
