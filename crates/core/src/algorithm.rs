//! Algorithm `A_tuple` (Figure 1): computing a k-matching mixed Nash
//! equilibrium from an `(IS, VC)` partition.
//!
//! Steps, exactly as in the paper:
//!
//! 1. run algorithm `A(Π_1(G), IS, VC)` — a matching NE of the Edge model;
//! 2. label its support edges `e_0 … e_{E_num−1}`;
//! 3. slide the width-`k` cyclic window to build the tuple set `T`
//!    (`δ = E_num / gcd(E_num, k)` tuples);
//! 4. support: `D(VP) := IS`, `D(tp) := T`;
//! 5. uniform probabilities per Lemma 4.1.
//!
//! Theorem 4.12 proves correctness, Theorem 4.13 the `O(k·n)` running time
//! of steps 2–5 (step 1 costs `O(n)` given the partition).

use crate::k_matching::KMatchingNe;
use crate::matching_ne::{algorithm_a, MatchingNe};
use crate::model::TupleGame;
use crate::reduction::{expand_to_k_matching, support_tuple_count};
use crate::CoreError;
use defender_graph::VertexId;

/// The output of [`a_tuple`]: the equilibrium plus the intermediate
/// artifacts useful for diagnostics and the experiments.
#[derive(Clone, Debug)]
pub struct ATupleReport {
    /// The k-matching mixed Nash equilibrium of `Π_k(G)`.
    pub ne: KMatchingNe,
    /// The Edge-model matching NE produced by step 1.
    pub base: MatchingNe,
    /// `E_num = |D_s'(tp)|` — support edges labeled in step 2.
    pub e_num: usize,
    /// `δ` — the number of tuples built in step 3.
    pub delta: usize,
}

impl ATupleReport {
    /// The defender-gain amplification over the Edge model — exactly `k`
    /// (Theorem 4.5).
    #[must_use]
    pub fn gain_ratio(&self) -> defender_num::Ratio {
        crate::reduction::gain_ratio(&self.ne, &self.base)
    }

    /// A one-line human summary of the run: support sizes, tuple count,
    /// gain, and the Theorem 4.5 amplification.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "A_tuple: |IS| = {}, E_num = {}, delta = {} tuples, \
             defender gain = {} ({}x the Edge-model base {})",
            self.ne.supports().vp_support.len(),
            self.e_num,
            self.delta,
            self.ne.defender_gain(),
            self.gain_ratio(),
            self.base.defender_gain(),
        )
    }
}

impl std::fmt::Display for ATupleReport {
    /// Formats as the multi-line diagnostic block the CLI prints: the
    /// [`ATupleReport::summary`] line followed by the per-step artifacts.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.summary())?;
        writeln!(
            f,
            "  step 1: matching NE with {} support edges, base gain {}",
            self.base.supports().tp_support.len(),
            self.base.defender_gain()
        )?;
        writeln!(
            f,
            "  steps 2-5: labeled E_num = {} edges, cyclic window built {} tuples",
            self.e_num, self.delta
        )?;
        write!(
            f,
            "  equilibrium: hit probability {}, {} tuples in defender support",
            self.ne.hit_probability(),
            self.ne.tuple_count()
        )
    }
}

/// Algorithm `A_tuple(Π_k(G), IS, VC)` — Figure 1 of the paper.
///
/// # Errors
///
/// - [`CoreError::InvalidPartition`] when `(IS, VC)` does not partition
///   `V`, `IS` is dependent, or `VC` cannot be matched into `IS`;
/// - [`CoreError::TupleWiderThanSupport`] when `k > |IS|`
///   (DESIGN.md §5.2).
///
/// # Examples
///
/// ```
/// use defender_core::{a_tuple, model::TupleGame};
/// use defender_graph::{generators, VertexId};
/// use defender_num::Ratio;
///
/// let g = generators::cycle(6);
/// let game = TupleGame::new(&g, 2, 3)?;
/// let is: Vec<_> = [0, 2, 4].into_iter().map(VertexId::new).collect();
/// let vc: Vec<_> = [1, 3, 5].into_iter().map(VertexId::new).collect();
/// let report = a_tuple(&game, &is, &vc)?;
/// assert_eq!(report.ne.defender_gain(), Ratio::new(2 * 3, 3));
/// assert_eq!(report.gain_ratio(), Ratio::from(2));
/// # Ok::<(), defender_core::CoreError>(())
/// ```
pub fn a_tuple(
    game: &TupleGame<'_>,
    is: &[VertexId],
    vc: &[VertexId],
) -> Result<ATupleReport, CoreError> {
    let _span = defender_obs::span!("a_tuple");
    defender_obs::counter!("core.a_tuple.calls").incr();
    // Step 1: matching NE of Π_1(G) on the same graph and ν.
    let base = {
        let _step1 = defender_obs::span!("step1_matching_ne");
        let edge_game = TupleGame::edge_model(game.graph(), game.attacker_count())?;
        algorithm_a(&edge_game, is, vc)?
    };
    // Step 2: label the support edges e_0 … e_{E_num−1}.
    let e_num = {
        let _step2 = defender_obs::span!("step2_label_support");
        base.supports().tp_support.len()
    };
    // Steps 3–5: cyclic window expansion (shared with Lemma 4.8), support
    // assembly, and uniform probabilities per Lemma 4.1.
    let ne = {
        let _steps35 = defender_obs::span!("step3_5_cyclic_expansion");
        expand_to_k_matching(game, &base)?
    };
    let delta = support_tuple_count(e_num, game.k());
    defender_obs::counter!("core.a_tuple.tuples_built").add(delta as u64);
    debug_assert_eq!(ne.tuple_count(), delta);
    Ok(ATupleReport {
        ne,
        base,
        e_num,
        delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterization::{verify_mixed_ne, VerificationMode};
    use defender_graph::generators;
    use defender_num::Ratio;

    fn ids(values: &[usize]) -> Vec<VertexId> {
        values.iter().copied().map(VertexId::new).collect()
    }

    #[test]
    fn theorem_4_12_output_is_equilibrium() {
        let g = generators::cycle(8);
        for k in 1..=4usize {
            let game = TupleGame::new(&g, k, 5).unwrap();
            let report = a_tuple(&game, &ids(&[0, 2, 4, 6]), &ids(&[1, 3, 5, 7])).unwrap();
            let check = verify_mixed_ne(&game, report.ne.config(), VerificationMode::Auto).unwrap();
            assert!(check.is_equilibrium(), "k = {k}: {:?}", check.failures());
            assert_eq!(report.gain_ratio(), Ratio::from(k));
            assert_eq!(report.e_num, 4);
            assert_eq!(report.delta, support_tuple_count(4, k));
        }
    }

    #[test]
    fn grid_partition() {
        // 2×3 grid is bipartite with color classes of size 3.
        let g = generators::grid(2, 3);
        let bp = defender_graph::properties::bipartition(&g).unwrap();
        let game = TupleGame::new(&g, 2, 6).unwrap();
        let report = a_tuple(&game, &bp.left, &bp.right).unwrap();
        let check = verify_mixed_ne(&game, report.ne.config(), VerificationMode::Auto).unwrap();
        assert!(check.is_equilibrium(), "{:?}", check.failures());
        assert_eq!(report.ne.defender_gain(), Ratio::new(2 * 6, 3));
    }

    #[test]
    fn k_above_is_size_fails_cleanly() {
        let g = generators::cycle(4); // |IS| = 2, m = 4
        let game = TupleGame::new(&g, 3, 2).unwrap();
        let err = a_tuple(&game, &ids(&[0, 2]), &ids(&[1, 3])).unwrap_err();
        assert!(matches!(
            err,
            CoreError::TupleWiderThanSupport {
                k: 3,
                support_size: 2
            }
        ));
    }

    #[test]
    fn bad_partition_fails() {
        let g = generators::cycle(4);
        let game = TupleGame::new(&g, 1, 1).unwrap();
        let err = a_tuple(&game, &ids(&[0, 1]), &ids(&[2, 3])).unwrap_err();
        assert!(matches!(err, CoreError::InvalidPartition { .. }));
    }

    #[test]
    fn k_equals_e_num_single_tuple() {
        let g = generators::cycle(6);
        let game = TupleGame::new(&g, 3, 3).unwrap();
        let report = a_tuple(&game, &ids(&[0, 2, 4]), &ids(&[1, 3, 5])).unwrap();
        assert_eq!(report.delta, 1, "δ = E/gcd(E,E) = 1");
        assert_eq!(report.ne.tuple_count(), 1);
        assert_eq!(report.ne.hit_probability(), Ratio::ONE);
    }
}
