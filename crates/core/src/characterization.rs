//! The mixed Nash-equilibrium characterization of Theorem 3.4, as an exact
//! verifier.
//!
//! A mixed configuration `s` of `Π_k(G)` is a Nash equilibrium iff:
//!
//! 1. `E(D_s(tp))` is an edge cover of `G` and `D_s(VP)` is a vertex cover
//!    of the graph obtained by `E(D_s(tp))`;
//! 2. (a) the hit probability is constant on `D_s(VP)` and equals
//!    `min_v P_s(Hit(v))`; (b) the defender's probabilities sum to one;
//! 3. (a) the tuple mass is constant on `D_s(tp)` and equals
//!    `max_{t ∈ E^k} m_s(t)`; (b) the vertex-player mass totals `ν`.
//!
//! Condition 3(a) quantifies over the whole strategy space `E^k`;
//! computing `max_t m_s(t)` is maximum coverage, NP-hard in general
//! (DESIGN.md §5.3). [`VerificationMode`] selects between an exhaustive
//! enumeration (exact, small instances) and an analytic shortcut (exact
//! whenever mass is uniform on an independent support — the situation of
//! every k-matching NE).

use defender_graph::{edge_cover, independent_set, subgraph, vertex_cover};
use defender_num::Ratio;

use crate::model::{MixedConfig, TupleGame};
use crate::payoff;
use crate::tuple::all_tuples;
use crate::CoreError;

/// Default cap on `C(m, k)` for the exhaustive branch of `Auto` mode.
pub const DEFAULT_EXHAUSTIVE_LIMIT: usize = 200_000;

/// How to evaluate the `max_{t ∈ E^k} m_s(t)` side of condition 3(a).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerificationMode {
    /// Prefer the analytic shortcut; fall back to exhaustive enumeration
    /// capped at [`DEFAULT_EXHAUSTIVE_LIMIT`] tuples.
    Auto,
    /// Enumerate every tuple in `E^k` (exact; fails above the given cap).
    Exhaustive {
        /// Maximum number of tuples to enumerate.
        limit: usize,
    },
    /// Require the analytic preconditions (mass uniform on an independent
    /// support) and compute the maximum in closed form.
    Analytic,
}

/// Per-condition verdicts for one configuration (Theorem 3.4).
#[derive(Clone, Debug)]
pub struct MixedNeReport {
    /// Condition 1, first half: `E(D(tp))` covers every vertex.
    pub support_is_edge_cover: bool,
    /// Condition 1, second half: `D(VP)` covers the support subgraph.
    pub vp_covers_support_graph: bool,
    /// Condition 2(a), equality half: hit probability constant on `D(VP)`.
    pub hit_uniform_on_vp_support: bool,
    /// Condition 2(a), optimality half: that constant is the global
    /// minimum over `V`.
    pub hit_minimal_on_vp_support: bool,
    /// Condition 3(a), equality half: tuple mass constant on `D(tp)`.
    pub mass_uniform_on_tp_support: bool,
    /// Condition 3(a), optimality half: that constant is the maximum over
    /// all of `E^k`.
    pub mass_maximal_on_tp_support: bool,
    /// Condition 3(b): total mass on covered vertices equals `ν`
    /// (with condition 1 this is mass conservation, Claim 3.7).
    pub mass_conserved: bool,
    /// The common hit probability on the attackers' support, when uniform.
    pub support_hit: Option<Ratio>,
    /// The common tuple mass on the defender's support, when uniform.
    pub support_mass: Option<Ratio>,
    /// How 3(a)'s maximum was evaluated.
    pub mode_used: ModeUsed,
}

/// Which evaluation path decided condition 3(a).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModeUsed {
    /// `C(m, k)` tuples were enumerated.
    Exhaustive,
    /// The closed form `max = c · min(k, |support(m)|)` applied.
    Analytic,
}

impl MixedNeReport {
    /// Whether every condition of Theorem 3.4 holds — i.e. the
    /// configuration is a mixed Nash equilibrium.
    #[must_use]
    pub fn is_equilibrium(&self) -> bool {
        self.support_is_edge_cover
            && self.vp_covers_support_graph
            && self.hit_uniform_on_vp_support
            && self.hit_minimal_on_vp_support
            && self.mass_uniform_on_tp_support
            && self.mass_maximal_on_tp_support
            && self.mass_conserved
    }

    /// The conditions that failed, as short labels (empty at equilibrium).
    #[must_use]
    pub fn failures(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if !self.support_is_edge_cover {
            out.push("1: E(D(tp)) is not an edge cover");
        }
        if !self.vp_covers_support_graph {
            out.push("1: D(VP) does not cover the support subgraph");
        }
        if !self.hit_uniform_on_vp_support {
            out.push("2a: hit probability varies over D(VP)");
        }
        if !self.hit_minimal_on_vp_support {
            out.push("2a: a vertex outside D(VP) has smaller hit probability");
        }
        if !self.mass_uniform_on_tp_support {
            out.push("3a: tuple mass varies over D(tp)");
        }
        if !self.mass_maximal_on_tp_support {
            out.push("3a: a tuple outside D(tp) has larger mass");
        }
        if !self.mass_conserved {
            out.push("3b: covered mass differs from ν");
        }
        out
    }
}

/// Verifies Theorem 3.4's conditions for `config` exactly.
///
/// # Errors
///
/// - [`CoreError::ConfigMismatch`] when `ν = 0` (the theorem presumes at
///   least one vertex player; with none, *every* configuration is an
///   equilibrium and the characterization does not apply);
/// - [`CoreError::TooLarge`] when 3(a) needs exhaustive enumeration beyond
///   the mode's cap and the analytic preconditions fail.
pub fn verify_mixed_ne(
    game: &TupleGame<'_>,
    config: &MixedConfig,
    mode: VerificationMode,
) -> Result<MixedNeReport, CoreError> {
    if game.attacker_count() == 0 {
        return Err(CoreError::ConfigMismatch {
            reason: "Theorem 3.4 presumes ν ≥ 1 vertex players".into(),
        });
    }
    let _span = defender_obs::span!("verify_mixed_ne");
    defender_obs::counter!("core.characterization.checks").incr();
    let graph = game.graph();
    let vp_support = config.vp_support_union();
    let support_edges = config.support_edges();

    // Condition 1.
    let support_is_edge_cover = edge_cover::is_edge_cover(graph, &support_edges);
    let vp_covers_support_graph = vertex_cover::covers_edges(graph, &vp_support, &support_edges);

    // Condition 2(a).
    let hit = payoff::hit_probabilities(game, config);
    // lint: allow(index) hit is sized by vertex_count; VertexId::index is in range
    let support_hits: Vec<Ratio> = vp_support.iter().map(|v| hit[v.index()]).collect();
    // lint: allow(index) windows(2) yields exactly two elements
    let hit_uniform_on_vp_support = support_hits.windows(2).all(|w| w[0] == w[1]);
    let support_hit = support_hits.first().copied();
    let global_min_hit = hit.iter().copied().min().unwrap_or(Ratio::ZERO);
    let hit_minimal_on_vp_support =
        hit_uniform_on_vp_support && support_hit.is_some_and(|h| h == global_min_hit);

    // Condition 3(a), equality half.
    let mass = payoff::vertex_mass(game, config);
    let support_masses: Vec<Ratio> = config
        .tp_support()
        .iter()
        .map(|t| payoff::tuple_mass_with(&mass, game, t))
        .collect();
    // lint: allow(index) windows(2) yields exactly two elements
    let mass_uniform_on_tp_support = support_masses.windows(2).all(|w| w[0] == w[1]);
    let support_mass = support_masses.first().copied();

    // Condition 3(a), optimality half: max_{t ∈ E^k} m_s(t).
    let (max_mass, mode_used) = maximum_tuple_mass(game, &mass, mode)?;
    let mass_maximal_on_tp_support =
        mass_uniform_on_tp_support && support_mass.is_some_and(|m| m == max_mass);

    // Condition 3(b): Σ_{v ∈ V(D(tp))} m(v) = ν.
    let covered = graph.endpoint_set(&support_edges);
    // lint: allow(index) mass is sized by vertex_count; VertexId::index is in range
    let covered_mass: Ratio = covered.iter().map(|v| mass[v.index()]).sum();
    let mass_conserved = covered_mass == Ratio::from(game.attacker_count());

    let report = MixedNeReport {
        support_is_edge_cover,
        vp_covers_support_graph,
        hit_uniform_on_vp_support,
        hit_minimal_on_vp_support,
        mass_uniform_on_tp_support,
        mass_maximal_on_tp_support,
        mass_conserved,
        support_hit,
        support_mass,
        mode_used,
    };
    defender_obs::counter!("core.characterization.conditions_failed")
        // lint: allow(cast) failure count fits u64; usize to u64 is lossless on 64-bit
        .add(report.failures().len() as u64);
    Ok(report)
}

/// Computes `max_{t ∈ E^k} m(t)` exactly, choosing a strategy per `mode`.
fn maximum_tuple_mass(
    game: &TupleGame<'_>,
    mass: &[Ratio],
    mode: VerificationMode,
) -> Result<(Ratio, ModeUsed), CoreError> {
    let result = match mode {
        VerificationMode::Analytic => Ok((analytic_max(game, mass)?, ModeUsed::Analytic)),
        VerificationMode::Exhaustive { limit } => {
            Ok((exhaustive_max(game, mass, limit)?, ModeUsed::Exhaustive))
        }
        VerificationMode::Auto => match analytic_max(game, mass) {
            Ok(max) => Ok((max, ModeUsed::Analytic)),
            Err(_) => Ok((
                exhaustive_max(game, mass, DEFAULT_EXHAUSTIVE_LIMIT)?,
                ModeUsed::Exhaustive,
            )),
        },
    };
    if let Ok((_, used)) = &result {
        match used {
            ModeUsed::Analytic => {
                defender_obs::counter!("core.characterization.analytic_evals").incr();
            }
            ModeUsed::Exhaustive => {
                defender_obs::counter!("core.characterization.exhaustive_evals").incr();
            }
        }
    }
    result
}

/// Closed forms for the two uniform-mass cases (DESIGN.md §5.3):
///
/// - **Independent support** (every k-matching NE): when the positive-mass
///   vertices form an independent set and all carry the same mass `c`,
///   every edge covers at most one of them, so `k` distinct edges cover at
///   most `min(k, |support|)` — achievable because each positive vertex
///   has a private incident edge (no two can share one, the set being
///   independent) and `m ≥ k` provides padding.
/// - **Full support** (every covering NE): when *all* vertices carry mass
///   `c`, the maximum is `c` times the most vertices `k` distinct edges
///   can cover: `2k` while `k ≤ μ(G)`, and `min(μ(G) + k, n)` beyond —
///   past a maximum matching, each extra edge adds at most one new vertex
///   (two new endpoints would extend the matching), and exactly one while
///   uncovered vertices remain (an uncovered vertex always has an edge to
///   a covered one at maximality).
fn analytic_max(game: &TupleGame<'_>, mass: &[Ratio]) -> Result<Ratio, CoreError> {
    let graph = game.graph();
    let positive: Vec<defender_graph::VertexId> = graph
        .vertices()
        // lint: allow(index) mass is sized by vertex_count; VertexId::index is in range
        .filter(|v| mass[v.index()] > Ratio::ZERO)
        .collect();
    if positive.is_empty() {
        return Ok(Ratio::ZERO);
    }
    // lint: allow(index) positive is nonempty: checked by the early return above
    let c = mass[positive[0].index()];
    // lint: allow(index) mass is sized by vertex_count; VertexId::index is in range
    if positive.iter().any(|v| mass[v.index()] != c) {
        return Err(CoreError::ConfigMismatch {
            reason: "analytic mode needs uniform mass on the positive support".into(),
        });
    }
    if independent_set::is_independent_set(graph, &positive) {
        let coverable = game.k().min(positive.len());
        return Ok(c * Ratio::from(coverable));
    }
    if positive.len() == graph.vertex_count() {
        let mu = defender_matching::matching_number(graph);
        let k = game.k();
        let coverable = if k <= mu {
            2 * k
        } else {
            (mu + k).min(graph.vertex_count())
        };
        return Ok(c * Ratio::from(coverable));
    }
    Err(CoreError::ConfigMismatch {
        reason: "analytic mode needs an independent or full positive support".into(),
    })
}

/// Exhaustive maximum over all `C(m, k)` tuples.
fn exhaustive_max(game: &TupleGame<'_>, mass: &[Ratio], limit: usize) -> Result<Ratio, CoreError> {
    let tuples = all_tuples(game.graph(), game.k(), limit)?;
    Ok(tuples
        .iter()
        .map(|t| payoff::tuple_mass_with(mass, game, t))
        .max()
        .unwrap_or(Ratio::ZERO))
}

/// Checks condition 1 of Theorem 3.4 alone (used by Lemma 4.1 /
/// Definition 4.2, where a k-matching configuration must additionally be an
/// edge cover with a covering attacker support).
#[must_use]
pub fn condition_1_holds(game: &TupleGame<'_>, config: &MixedConfig) -> bool {
    let graph = game.graph();
    let support_edges = config.support_edges();
    let vp_support = config.vp_support_union();
    edge_cover::is_edge_cover(graph, &support_edges)
        && vertex_cover::covers_edges(graph, &vp_support, &support_edges)
}

/// The subgraph "obtained by `E(D_s(tp))`" — exposed for diagnostics.
#[must_use]
pub fn support_subgraph(game: &TupleGame<'_>, config: &MixedConfig) -> subgraph::Subgraph {
    subgraph::spanned_by_edges(game.graph(), &config.support_edges())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use defender_game::MixedStrategy;
    use defender_graph::{generators, EdgeId, VertexId};

    /// The P4 matching NE: attackers uniform on {v0, v3}, defender uniform
    /// on {(0,1), (2,3)}.
    fn p4_equilibrium<'g>(graph: &'g defender_graph::Graph) -> (TupleGame<'g>, MixedConfig) {
        let game = TupleGame::new(graph, 1, 2).unwrap();
        let config = MixedConfig::symmetric(
            &game,
            MixedStrategy::uniform(vec![VertexId::new(0), VertexId::new(3)]),
            MixedStrategy::uniform(vec![
                Tuple::single(EdgeId::new(0)),
                Tuple::single(EdgeId::new(2)),
            ]),
        )
        .unwrap();
        (game, config)
    }

    #[test]
    fn accepts_the_p4_matching_ne_in_all_modes() {
        let g = generators::path(4);
        let (game, config) = p4_equilibrium(&g);
        for mode in [
            VerificationMode::Auto,
            VerificationMode::Analytic,
            VerificationMode::Exhaustive { limit: 1000 },
        ] {
            let report = verify_mixed_ne(&game, &config, mode).unwrap();
            assert!(
                report.is_equilibrium(),
                "mode {mode:?}: {:?}",
                report.failures()
            );
            assert_eq!(report.support_hit, Some(Ratio::new(1, 2)));
            assert_eq!(report.support_mass, Some(Ratio::ONE));
        }
    }

    #[test]
    fn analytic_and_exhaustive_agree_on_max() {
        let g = generators::path(4);
        let (game, config) = p4_equilibrium(&g);
        let a = verify_mixed_ne(&game, &config, VerificationMode::Analytic).unwrap();
        let e =
            verify_mixed_ne(&game, &config, VerificationMode::Exhaustive { limit: 100 }).unwrap();
        assert_eq!(a.mode_used, ModeUsed::Analytic);
        assert_eq!(e.mode_used, ModeUsed::Exhaustive);
        assert_eq!(a.is_equilibrium(), e.is_equilibrium());
    }

    #[test]
    fn rejects_non_covering_defender_support() {
        let g = generators::path(4);
        let game = TupleGame::new(&g, 1, 2).unwrap();
        // Defender only ever plays edge (0,1): v2, v3 uncovered.
        let config = MixedConfig::symmetric(
            &game,
            MixedStrategy::uniform(vec![VertexId::new(0), VertexId::new(3)]),
            MixedStrategy::pure(Tuple::single(EdgeId::new(0))),
        )
        .unwrap();
        let report = verify_mixed_ne(&game, &config, VerificationMode::Auto).unwrap();
        assert!(!report.support_is_edge_cover);
        assert!(!report.is_equilibrium());
    }

    #[test]
    fn rejects_biased_defender() {
        let g = generators::path(4);
        let game = TupleGame::new(&g, 1, 2).unwrap();
        let config = MixedConfig::symmetric(
            &game,
            MixedStrategy::uniform(vec![VertexId::new(0), VertexId::new(3)]),
            MixedStrategy::from_entries(vec![
                (Tuple::single(EdgeId::new(0)), Ratio::new(2, 3)),
                (Tuple::single(EdgeId::new(2)), Ratio::new(1, 3)),
            ])
            .unwrap(),
        )
        .unwrap();
        let report = verify_mixed_ne(&game, &config, VerificationMode::Auto).unwrap();
        assert!(!report.hit_uniform_on_vp_support);
        assert!(!report.is_equilibrium());
    }

    #[test]
    fn rejects_attacker_on_overcovered_vertex() {
        // Attackers sit on v1 (hit by both support edges of a C4 pairing).
        let g = generators::cycle(4);
        let game = TupleGame::new(&g, 1, 1).unwrap();
        // C4 edges sorted: (0,1),(0,3),(1,2),(2,3).
        let config = MixedConfig::symmetric(
            &game,
            MixedStrategy::pure(VertexId::new(1)),
            MixedStrategy::uniform(vec![
                Tuple::single(EdgeId::new(0)),
                Tuple::single(EdgeId::new(2)),
            ]),
        )
        .unwrap();
        let report = verify_mixed_ne(&game, &config, VerificationMode::Auto).unwrap();
        // v1 is hit with probability 1 while v3 is hit with probability 0.
        assert!(!report.hit_minimal_on_vp_support);
        assert!(!report.is_equilibrium());
    }

    #[test]
    fn rejects_defender_missing_heavy_tuple() {
        // Mass concentrated on v0 and v3 of P4, but the defender mixes on
        // middle edge (1,2) and edge (0,1): tuple (2,3) has equal mass to
        // (0,1) but (1,2) has less — non-uniform support mass.
        let g = generators::path(4);
        let game = TupleGame::new(&g, 1, 2).unwrap();
        let config = MixedConfig::symmetric(
            &game,
            MixedStrategy::uniform(vec![VertexId::new(0), VertexId::new(3)]),
            MixedStrategy::uniform(vec![
                Tuple::single(EdgeId::new(0)),
                Tuple::single(EdgeId::new(1)),
            ]),
        )
        .unwrap();
        let report = verify_mixed_ne(&game, &config, VerificationMode::Auto).unwrap();
        assert!(!report.is_equilibrium());
        assert!(!report.failures().is_empty());
    }

    #[test]
    fn zero_attackers_rejected() {
        let g = generators::path(2);
        let game = TupleGame::new(&g, 1, 0).unwrap();
        let config = MixedConfig::new(
            &game,
            vec![],
            MixedStrategy::pure(Tuple::single(EdgeId::new(0))),
        )
        .unwrap();
        assert!(verify_mixed_ne(&game, &config, VerificationMode::Auto).is_err());
    }

    #[test]
    fn analytic_mode_rejects_dependent_support() {
        // Attackers on two adjacent vertices: analytic precondition fails.
        let g = generators::path(4);
        let game = TupleGame::new(&g, 1, 2).unwrap();
        let config = MixedConfig::symmetric(
            &game,
            MixedStrategy::uniform(vec![VertexId::new(0), VertexId::new(1)]),
            MixedStrategy::uniform(vec![
                Tuple::single(EdgeId::new(0)),
                Tuple::single(EdgeId::new(2)),
            ]),
        )
        .unwrap();
        assert!(verify_mixed_ne(&game, &config, VerificationMode::Analytic).is_err());
        // Auto falls back to exhaustive and completes.
        let report = verify_mixed_ne(&game, &config, VerificationMode::Auto).unwrap();
        assert_eq!(report.mode_used, ModeUsed::Exhaustive);
    }

    #[test]
    fn condition_1_helper() {
        let g = generators::path(4);
        let (game, config) = p4_equilibrium(&g);
        assert!(condition_1_holds(&game, &config));
        let sub = support_subgraph(&game, &config);
        assert_eq!(sub.graph.edge_count(), 2);
    }
}
