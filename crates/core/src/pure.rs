//! Pure Nash equilibria: Theorem 3.1 and Corollaries 3.2–3.3.
//!
//! `Π_k(G)` has a pure NE **iff** `G` has an edge cover of size `k`
//! (Theorem 3.1); existence is decidable in polynomial time via Gallai's
//! minimum edge cover (Corollary 3.2); and since every edge cover has at
//! least `⌈n/2⌉` edges, `n ≥ 2k + 1` rules pure NE out (Corollary 3.3).

use defender_graph::{EdgeSet, VertexId};
use defender_matching::edge_cover::{edge_cover_number, edge_cover_of_size};

use crate::model::{PureConfig, TupleGame};
use crate::tuple::Tuple;

/// Outcome of the pure-NE existence question for one instance.
#[derive(Clone, Debug)]
pub enum PureNeOutcome {
    /// An equilibrium exists; a witness is included.
    Exists {
        /// A pure NE: the defender plays an edge cover of size `k`, so
        /// every attacker is caught wherever it sits.
        equilibrium: PureConfig,
        /// The size-`k` edge cover the defender plays.
        cover: EdgeSet,
    },
    /// No pure NE: every edge cover needs more than `k` edges.
    None {
        /// The edge-cover number `ρ(G)` (`> k`).
        min_cover_size: usize,
    },
}

impl PureNeOutcome {
    /// Whether a pure NE exists.
    #[must_use]
    pub fn exists(&self) -> bool {
        matches!(self, PureNeOutcome::Exists { .. })
    }
}

/// Theorem 3.1 + Corollary 3.2: decides pure-NE existence for `Π_k(G)` in
/// polynomial time and constructs a witness when one exists.
///
/// The witness follows the theorem's proof: the defender's tuple is an
/// edge cover of size exactly `k` (a minimum cover padded with arbitrary
/// extra edges), so `V(s_tp) = V` and every attacker is caught regardless
/// of position; attackers are placed on vertex 0.
///
/// # Examples
///
/// ```
/// use defender_core::{model::TupleGame, pure::pure_ne_existence};
/// use defender_graph::generators;
///
/// let g = generators::cycle(6); // ρ(C6) = 3
/// let narrow = TupleGame::new(&g, 2, 4)?;
/// assert!(!pure_ne_existence(&narrow).exists());
/// let wide = TupleGame::new(&g, 3, 4)?;
/// assert!(pure_ne_existence(&wide).exists());
/// # Ok::<(), defender_core::CoreError>(())
/// ```
#[must_use]
pub fn pure_ne_existence(game: &TupleGame<'_>) -> PureNeOutcome {
    let graph = game.graph();
    match edge_cover_of_size(graph, game.k()) {
        Some(cover) => {
            let defender =
                // lint: allow(panic) edge_cover_of_size returns k distinct edges
                Tuple::new(cover.clone()).expect("edge_cover_of_size returns k distinct edges");
            let equilibrium = PureConfig {
                attacker_choices: vec![VertexId::new(0); game.attacker_count()],
                defender,
            };
            PureNeOutcome::Exists { equilibrium, cover }
        }
        None => PureNeOutcome::None {
            min_cover_size: edge_cover_number(graph)
                // lint: allow(panic) game-ready graphs are validated to have no isolated vertices
                .expect("game-ready graphs have no isolated vertices"),
        },
    }
}

/// Corollary 3.3: when `n ≥ 2k + 1`, no pure NE exists (any edge cover has
/// `≥ ⌈n/2⌉ > k` edges). A cheap sufficient test; [`pure_ne_existence`]
/// is the complete one.
#[must_use]
pub fn no_pure_ne_by_size(game: &TupleGame<'_>) -> bool {
    // The paper phrases this as n ≥ 2k + 1.
    game.graph().vertex_count() > 2 * game.k()
}

/// Exact pure-NE verification, following the case analysis in the proof of
/// Theorem 3.1:
///
/// - `ν = 0`: every configuration is trivially an equilibrium;
/// - the defender's tuple covers all of `V`: every attacker is caught and
///   the defender is at its maximum `ν` — equilibrium;
/// - otherwise: if any attacker sits on a covered vertex it can move to an
///   uncovered one; if all attackers sit uncovered the defender catches 0
///   and can deviate to any tuple containing an edge at an attacker — not
///   an equilibrium either way.
///
/// # Errors
///
/// Returns [`crate::CoreError::ConfigMismatch`] when the configuration
/// does not fit the game.
pub fn verify_pure_ne(game: &TupleGame<'_>, config: &PureConfig) -> Result<bool, crate::CoreError> {
    config.check_for(game)?;
    if game.attacker_count() == 0 {
        return Ok(true);
    }
    let covered = config.defender.vertices(game.graph());
    Ok(covered.len() == game.graph().vertex_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_graph::{edge_cover, generators, EdgeId};

    #[test]
    fn theorem_3_1_frontier_on_cycle() {
        let g = generators::cycle(6); // ρ = 3, m = 6
        for k in 1..=6 {
            let game = TupleGame::new(&g, k, 3).unwrap();
            let outcome = pure_ne_existence(&game);
            assert_eq!(outcome.exists(), k >= 3, "k = {k}");
        }
    }

    #[test]
    fn witness_is_a_cover_and_an_equilibrium() {
        let g = generators::petersen(); // ρ = 5
        let game = TupleGame::new(&g, 6, 4).unwrap();
        let PureNeOutcome::Exists { equilibrium, cover } = pure_ne_existence(&game) else {
            panic!("k = 6 ≥ ρ = 5 must admit a pure NE");
        };
        assert_eq!(cover.len(), 6);
        assert!(edge_cover::is_edge_cover(&g, &cover));
        assert!(verify_pure_ne(&game, &equilibrium).unwrap());
        assert_eq!(
            equilibrium.ip_tuple_player(&game),
            4,
            "all attackers caught"
        );
    }

    #[test]
    fn none_reports_min_cover() {
        let g = generators::star(5); // ρ = 5
        let game = TupleGame::new(&g, 2, 1).unwrap();
        let PureNeOutcome::None { min_cover_size } = pure_ne_existence(&game) else {
            panic!("star needs all 5 spokes");
        };
        assert_eq!(min_cover_size, 5);
    }

    #[test]
    fn corollary_3_3_is_sound() {
        // Whenever the size test fires, existence must indeed fail.
        for g in [
            generators::cycle(9),
            generators::path(8),
            generators::petersen(),
        ] {
            for k in 1..=3 {
                let game = TupleGame::new(&g, k, 2).unwrap();
                if no_pure_ne_by_size(&game) {
                    assert!(!pure_ne_existence(&game).exists(), "k = {k}, g = {g:?}");
                }
            }
        }
    }

    #[test]
    fn corollary_3_3_is_not_complete() {
        // Star K_{1,5}: n = 6 ≤ 2k + 1 fails for k = 3 (6 < 7), yet no
        // pure NE exists since ρ = 5 > 3. The cheap test must stay silent.
        let g = generators::star(5);
        let game = TupleGame::new(&g, 3, 1).unwrap();
        assert!(!no_pure_ne_by_size(&game));
        assert!(!pure_ne_existence(&game).exists());
    }

    #[test]
    fn verify_rejects_non_covering_tuple() {
        let g = generators::path(4);
        let game = TupleGame::new(&g, 1, 1).unwrap();
        let config = PureConfig {
            attacker_choices: vec![VertexId::new(3)],
            defender: Tuple::single(EdgeId::new(0)),
        };
        assert!(!verify_pure_ne(&game, &config).unwrap());
    }

    #[test]
    fn verify_accepts_everything_with_zero_attackers() {
        let g = generators::path(4);
        let game = TupleGame::new(&g, 1, 0).unwrap();
        let config = PureConfig {
            attacker_choices: vec![],
            defender: Tuple::single(EdgeId::new(0)),
        };
        assert!(verify_pure_ne(&game, &config).unwrap());
    }

    #[test]
    fn tiny_graph_below_frontier() {
        // P2 has ρ = 1, so even k = 1 admits a pure NE (n = 2 = 2k).
        let g = generators::path(2);
        let game = TupleGame::new(&g, 1, 2).unwrap();
        assert!(pure_ne_existence(&game).exists());
        assert!(!no_pure_ne_by_size(&game));
    }
}
