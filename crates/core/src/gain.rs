//! Defender gain and quality of protection — the quantities behind the
//! paper's headline result ("the gain of the defender is linear in `k`").

use defender_num::Ratio;

use crate::model::{MixedConfig, TupleGame};
use crate::payoff;

/// The defender's expected gain `IP_tp(s)` under any mixed configuration
/// (equation (2)): the expected number of arrested attackers.
#[must_use]
pub fn defender_gain(game: &TupleGame<'_>, config: &MixedConfig) -> Ratio {
    payoff::expected_ip_tuple_player(game, config)
}

/// Quality of protection: the probability that a given attacker is caught,
/// `IP_tp / ν ∈ [0, 1]`. For a k-matching NE this is `k / |IS|`.
///
/// Returns zero when `ν = 0` (nothing to protect against).
#[must_use]
pub fn quality_of_protection(game: &TupleGame<'_>, config: &MixedConfig) -> Ratio {
    if game.attacker_count() == 0 {
        return Ratio::ZERO;
    }
    // lint: allow(arith) attacker_count >= 1: zero case returned early above
    defender_gain(game, config) / Ratio::from(game.attacker_count())
}

/// Closed form of Corollary 4.10 for a k-matching NE: `k·ν / |IS|`.
/// Exposed so experiments can compare measured against predicted.
#[must_use]
pub fn predicted_k_matching_gain(k: usize, attackers: usize, is_size: usize) -> Ratio {
    // lint: allow(arith) is_size >= 1 for any independent set realizing the bound
    Ratio::from(k) * Ratio::from(attackers) / Ratio::from(is_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::a_tuple_bipartite;
    use crate::model::TupleGame;
    use defender_graph::generators;

    #[test]
    fn gain_matches_closed_form_across_k() {
        let g = generators::complete_bipartite(3, 5); // IS = 5 (larger side)
        let nu = 7;
        for k in 1..=5usize {
            let game = TupleGame::new(&g, k, nu).unwrap();
            let ne = a_tuple_bipartite(&game).unwrap();
            assert_eq!(
                defender_gain(&game, ne.config()),
                predicted_k_matching_gain(k, nu, 5),
                "k = {k}"
            );
            assert_eq!(
                quality_of_protection(&game, ne.config()),
                Ratio::new(k as i64, 5)
            );
        }
    }

    #[test]
    fn quality_is_a_probability_when_k_below_is() {
        let g = generators::complete_bipartite(2, 6);
        for k in 1..=6usize {
            let game = TupleGame::new(&g, k, 3).unwrap();
            let ne = a_tuple_bipartite(&game).unwrap();
            let q = quality_of_protection(&game, ne.config());
            assert!(q.is_probability(), "k = {k}: q = {q}");
        }
    }

    #[test]
    fn full_protection_at_k_equals_is() {
        // k = |IS|: every attacker caught with probability 1.
        let g = generators::complete_bipartite(2, 4);
        let game = TupleGame::new(&g, 4, 5).unwrap();
        let ne = a_tuple_bipartite(&game).unwrap();
        assert_eq!(quality_of_protection(&game, ne.config()), Ratio::ONE);
        assert_eq!(defender_gain(&game, ne.config()), Ratio::from(5));
    }
}
