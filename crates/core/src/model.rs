//! The Tuple model `Π_k(G)` (Definition 2.1) and its configurations.

use core::fmt;

use defender_game::MixedStrategy;
use defender_graph::{properties, EdgeSet, Graph, VertexId, VertexSet};

use crate::tuple::Tuple;
use crate::CoreError;

/// An instance `Π_k(G)` of the Tuple model.
///
/// Holds the graph, the defender width `k` (how many links the security
/// software can scan) and the number of vertex players `ν` (attackers).
/// Construction validates the standing assumptions: a non-empty graph with
/// no isolated vertices and `1 ≤ k ≤ m`.
///
/// For `k = 1` the instance *is* the Edge model of \[7\] (see the remark
/// after Definition 2.1); [`EdgeGame`] is a type alias, not a separate
/// implementation, so Observation 4.1 holds by construction.
///
/// # Examples
///
/// ```
/// use defender_core::model::TupleGame;
/// use defender_graph::generators;
///
/// let graph = generators::cycle(6);
/// let game = TupleGame::new(&graph, 2, 4)?;
/// assert_eq!(game.k(), 2);
/// assert_eq!(game.attacker_count(), 4);
/// # Ok::<(), defender_core::CoreError>(())
/// ```
#[derive(Clone, Debug)]
pub struct TupleGame<'g> {
    graph: &'g Graph,
    k: usize,
    attackers: usize,
}

/// The Edge model of \[7\]: the Tuple model at `k = 1`.
pub type EdgeGame<'g> = TupleGame<'g>;

impl<'g> TupleGame<'g> {
    /// Creates `Π_k(G)` with `attackers` vertex players.
    ///
    /// # Errors
    ///
    /// - [`CoreError::Graph`] if the graph is empty or has an isolated
    ///   vertex;
    /// - [`CoreError::InvalidWidth`] if `k` is outside `1..=m`.
    pub fn new(graph: &'g Graph, k: usize, attackers: usize) -> Result<TupleGame<'g>, CoreError> {
        properties::check_game_ready(graph)?;
        if k == 0 || k > graph.edge_count() {
            return Err(CoreError::InvalidWidth {
                k,
                edge_count: graph.edge_count(),
            });
        }
        Ok(TupleGame {
            graph,
            k,
            attackers,
        })
    }

    /// Creates the Edge-model instance `Π_1(G)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TupleGame::new`].
    pub fn edge_model(graph: &'g Graph, attackers: usize) -> Result<EdgeGame<'g>, CoreError> {
        TupleGame::new(graph, 1, attackers)
    }

    /// The same game on the same graph with a different defender width.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidWidth`] if `k` is outside `1..=m`.
    pub fn with_width(&self, k: usize) -> Result<TupleGame<'g>, CoreError> {
        TupleGame::new(self.graph, k, self.attackers)
    }

    /// The underlying graph `G`.
    #[must_use]
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The defender width `k` — how many edges one tuple contains.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The number of vertex players `ν`.
    #[must_use]
    pub fn attacker_count(&self) -> usize {
        self.attackers
    }

    /// Whether this instance is the Edge model (`k = 1`).
    #[must_use]
    pub fn is_edge_model(&self) -> bool {
        self.k == 1
    }
}

/// A pure configuration: one vertex per attacker plus one defender tuple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PureConfig {
    /// `s_i` — the vertex chosen by each vertex player, length `ν`.
    pub attacker_choices: Vec<VertexId>,
    /// `s_tp` — the defender's tuple of `k` edges.
    pub defender: Tuple,
}

impl PureConfig {
    /// Validates the configuration against a game.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ConfigMismatch`] on any shape violation.
    pub fn check_for(&self, game: &TupleGame<'_>) -> Result<(), CoreError> {
        if self.attacker_choices.len() != game.attacker_count() {
            return Err(CoreError::ConfigMismatch {
                reason: format!(
                    "{} attacker choices for ν = {}",
                    self.attacker_choices.len(),
                    game.attacker_count()
                ),
            });
        }
        if let Some(v) = self
            .attacker_choices
            .iter()
            .find(|v| v.index() >= game.graph().vertex_count())
        {
            return Err(CoreError::ConfigMismatch {
                reason: format!("unknown vertex {v}"),
            });
        }
        self.defender.check_for(game.graph(), game.k())
    }

    /// Individual Profit of vertex player `i` (Definition 2.1): 1 when it
    /// escapes the defender's tuple, 0 when caught.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ ν` or the configuration does not fit `game`.
    #[must_use]
    pub fn ip_vertex_player(&self, game: &TupleGame<'_>, i: usize) -> u64 {
        let v = self.attacker_choices[i];
        u64::from(!self.defender.covers(game.graph(), v))
    }

    /// Individual Profit of the tuple player: the number of caught
    /// attackers `|{i : s_i ∈ V(s_tp)}|`.
    #[must_use]
    pub fn ip_tuple_player(&self, game: &TupleGame<'_>) -> u64 {
        self.attacker_choices
            .iter()
            .filter(|&&v| self.defender.covers(game.graph(), v))
            .count() as u64
    }
}

/// A mixed configuration: a probability distribution per player.
///
/// Probabilities are exact rationals ([`defender_num::Ratio`] via
/// [`MixedStrategy`]). Validation against a game checks widths and id
/// ranges once, at construction.
#[derive(Clone, Debug)]
pub struct MixedConfig {
    attacker_strategies: Vec<MixedStrategy<VertexId>>,
    defender: MixedStrategy<Tuple>,
}

impl MixedConfig {
    /// Builds a mixed configuration, validating it against `game`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ConfigMismatch`] on any shape violation.
    pub fn new(
        game: &TupleGame<'_>,
        attacker_strategies: Vec<MixedStrategy<VertexId>>,
        defender: MixedStrategy<Tuple>,
    ) -> Result<MixedConfig, CoreError> {
        if attacker_strategies.len() != game.attacker_count() {
            return Err(CoreError::ConfigMismatch {
                reason: format!(
                    "{} attacker strategies for ν = {}",
                    attacker_strategies.len(),
                    game.attacker_count()
                ),
            });
        }
        for s in &attacker_strategies {
            if let Some(v) = s
                .support()
                .into_iter()
                .find(|v| v.index() >= game.graph().vertex_count())
            {
                return Err(CoreError::ConfigMismatch {
                    reason: format!("unknown vertex {v}"),
                });
            }
        }
        for t in defender.support() {
            t.check_for(game.graph(), game.k())?;
        }
        Ok(MixedConfig {
            attacker_strategies,
            defender,
        })
    }

    /// Builds the symmetric configuration where every attacker plays
    /// `attacker` — the shape of every structural NE in the paper.
    ///
    /// # Errors
    ///
    /// Same as [`MixedConfig::new`].
    pub fn symmetric(
        game: &TupleGame<'_>,
        attacker: MixedStrategy<VertexId>,
        defender: MixedStrategy<Tuple>,
    ) -> Result<MixedConfig, CoreError> {
        let attackers = vec![attacker; game.attacker_count()];
        MixedConfig::new(game, attackers, defender)
    }

    /// The mixed strategy of vertex player `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ ν`.
    #[must_use]
    pub fn attacker(&self, i: usize) -> &MixedStrategy<VertexId> {
        // lint: allow(index) documented panic contract: callers keep i below nu
        &self.attacker_strategies[i]
    }

    /// All attacker strategies, in player order.
    #[must_use]
    pub fn attackers(&self) -> &[MixedStrategy<VertexId>] {
        &self.attacker_strategies
    }

    /// The defender's mixed strategy over tuples.
    #[must_use]
    pub fn defender(&self) -> &MixedStrategy<Tuple> {
        &self.defender
    }

    /// `D_s(VP)` — the union of the attackers' supports, sorted.
    #[must_use]
    pub fn vp_support_union(&self) -> VertexSet {
        let mut out: Vec<VertexId> = self
            .attacker_strategies
            .iter()
            .flat_map(|s| s.support().into_iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `D_s(tp)` — the defender's support tuples, sorted.
    #[must_use]
    pub fn tp_support(&self) -> Vec<&Tuple> {
        self.defender.support()
    }

    /// `E(D_s(tp))` — the distinct edges appearing in support tuples,
    /// sorted.
    #[must_use]
    pub fn support_edges(&self) -> EdgeSet {
        let mut out: EdgeSet = self
            .defender
            .support()
            .into_iter()
            .flat_map(|t| t.edges().iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `Tuples_s(v)` — the support tuples whose endpoint set contains `v`.
    #[must_use]
    pub fn tuples_hitting(&self, graph: &Graph, v: VertexId) -> Vec<&Tuple> {
        self.defender
            .support()
            .into_iter()
            .filter(|t| t.covers(graph, v))
            .collect()
    }
}

impl fmt::Display for MixedConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MixedConfig(ν = {}, |D(VP)| = {}, |D(tp)| = {})",
            self.attacker_strategies.len(),
            self.vp_support_union().len(),
            self.defender.support_size()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_graph::{generators, EdgeId, GraphBuilder};

    #[test]
    fn game_construction_validates() {
        let g = generators::cycle(4);
        assert!(TupleGame::new(&g, 1, 2).is_ok());
        assert!(TupleGame::new(&g, 4, 2).is_ok());
        assert!(matches!(
            TupleGame::new(&g, 0, 2),
            Err(CoreError::InvalidWidth { k: 0, .. })
        ));
        assert!(matches!(
            TupleGame::new(&g, 5, 2),
            Err(CoreError::InvalidWidth { k: 5, .. })
        ));
    }

    #[test]
    fn game_rejects_degenerate_graphs() {
        let empty = GraphBuilder::new(0).build();
        assert!(matches!(
            TupleGame::new(&empty, 1, 1),
            Err(CoreError::Graph(_))
        ));
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let isolated = b.build();
        assert!(matches!(
            TupleGame::new(&isolated, 1, 1),
            Err(CoreError::Graph(_))
        ));
    }

    #[test]
    fn edge_model_is_k1() {
        let g = generators::path(3);
        let game = TupleGame::edge_model(&g, 2).unwrap();
        assert!(game.is_edge_model());
        assert_eq!(game.k(), 1);
        let wide = game.with_width(2).unwrap();
        assert!(!wide.is_edge_model());
        assert_eq!(wide.attacker_count(), 2);
    }

    #[test]
    fn pure_payoffs_follow_definition() {
        let g = generators::path(4); // edges (0,1),(1,2),(2,3)
        let game = TupleGame::new(&g, 2, 3).unwrap();
        let config = PureConfig {
            attacker_choices: vec![VertexId::new(0), VertexId::new(3), VertexId::new(3)],
            defender: Tuple::new(vec![EdgeId::new(0), EdgeId::new(1)]).unwrap(),
        };
        config.check_for(&game).unwrap();
        // Tuple covers {0,1,2}; attackers at 0 caught, at 3 escape.
        assert_eq!(config.ip_vertex_player(&game, 0), 0);
        assert_eq!(config.ip_vertex_player(&game, 1), 1);
        assert_eq!(config.ip_tuple_player(&game), 1);
    }

    #[test]
    fn pure_config_shape_checks() {
        let g = generators::path(3);
        let game = TupleGame::new(&g, 1, 2).unwrap();
        let short = PureConfig {
            attacker_choices: vec![VertexId::new(0)],
            defender: Tuple::single(EdgeId::new(0)),
        };
        assert!(short.check_for(&game).is_err());
        let ghost = PureConfig {
            attacker_choices: vec![VertexId::new(0), VertexId::new(9)],
            defender: Tuple::single(EdgeId::new(0)),
        };
        assert!(ghost.check_for(&game).is_err());
    }

    #[test]
    fn mixed_config_supports() {
        let g = generators::path(4);
        let game = TupleGame::new(&g, 1, 2).unwrap();
        let vp = MixedStrategy::uniform(vec![VertexId::new(0), VertexId::new(3)]);
        let tp = MixedStrategy::uniform(vec![
            Tuple::single(EdgeId::new(0)),
            Tuple::single(EdgeId::new(2)),
        ]);
        let config = MixedConfig::symmetric(&game, vp, tp).unwrap();
        assert_eq!(
            config.vp_support_union(),
            vec![VertexId::new(0), VertexId::new(3)]
        );
        assert_eq!(config.support_edges(), vec![EdgeId::new(0), EdgeId::new(2)]);
        assert_eq!(config.tp_support().len(), 2);
        assert_eq!(config.tuples_hitting(&g, VertexId::new(1)).len(), 1);
        assert_eq!(config.tuples_hitting(&g, VertexId::new(0)).len(), 1);
        assert!(config.to_string().contains("ν = 2"));
    }

    #[test]
    fn mixed_config_rejects_wrong_width() {
        let g = generators::path(4);
        let game = TupleGame::new(&g, 2, 1).unwrap();
        let vp = MixedStrategy::pure(VertexId::new(0));
        let tp = MixedStrategy::pure(Tuple::single(EdgeId::new(0)));
        assert!(MixedConfig::symmetric(&game, vp, tp).is_err());
    }

    #[test]
    fn mixed_config_rejects_unknown_ids() {
        let g = generators::path(3);
        let game = TupleGame::new(&g, 1, 1).unwrap();
        let vp = MixedStrategy::pure(VertexId::new(7));
        let tp = MixedStrategy::pure(Tuple::single(EdgeId::new(0)));
        assert!(MixedConfig::symmetric(&game, vp, tp).is_err());
    }
}
