//! # The Tuple model — "The Power of the Defender" (ICDCS 2006)
//!
//! A network-security game `Π_k(G)` on an undirected graph `G`: `ν`
//! *vertex players* (attackers) each choose a vertex; one *tuple player*
//! (the defender, a security software) chooses a tuple of `k` distinct
//! edges and arrests every attacker sitting on an endpoint. Attackers
//! maximize their escape probability, the defender the expected number of
//! arrests. For `k = 1` this is the Edge model of Mavronicolas et al.
//!
//! The crate implements every result of the paper:
//!
//! | paper | here |
//! |---|---|
//! | Definition 2.1 (model, payoffs) | [`model`], [`payoff`] |
//! | Definition 2.2 / Lemma 2.1 / Theorem 2.2 (matching NE) | [`matching_ne`] |
//! | Theorem 3.1, Corollaries 3.2–3.3 (pure NE) | [`pure`] |
//! | Theorem 3.4 (mixed-NE characterization) | [`characterization`] |
//! | Definition 4.1, Lemma 4.1 (k-matching NE) | [`k_matching`] |
//! | Theorem 4.5, Lemmas 4.6/4.8, Claim 4.9, Cors 4.7/4.10 | [`reduction`] |
//! | Algorithm `A_tuple` (Fig. 1), Theorems 4.12–4.13 | [`algorithm`] |
//! | Theorem 5.1 (bipartite application) | [`bipartite`] |
//! | headline: gain linear in `k` | [`gain`] |
//!
//! Plus two pieces the paper only implies: a Monte-Carlo attack
//! [`simulate`]r standing in for the motivating deployment, and an
//! [`exhaustive`] first-principles verifier used to cross-validate the
//! structural results on small instances.
//!
//! Extensions beyond the paper (drawn from its related work \[8\]):
//!
//! - [`covering_ne`] — the perfect-matching equilibrium family, which
//!   also serves non-bipartite graphs (e.g. the Petersen graph);
//! - [`tree`] — an `O(n)` tree specialization replacing König;
//! - [`path_model`] — the defender-cleans-a-path variant: pure NE ⇔
//!   Hamiltonian path, plus a rotation equilibrium on cycles;
//! - [`best_response`] oracles (max coverage: exact + greedy) and
//!   fictitious-play [`dynamics`] that *learn* the equilibrium value;
//! - [`solve`] — exact equilibria on **arbitrary** graphs via a rational
//!   zero-sum LP (`defender-lp`), covering instances outside every
//!   constructive family;
//! - [`defense`] — defense ratio / Price of Defense: the universal
//!   `DR ≥ n/(2k)` bound and its tightness on perfect-matching graphs.
//!
//! # Quick start
//!
//! ```
//! use defender_core::{a_tuple_bipartite, model::TupleGame};
//! use defender_graph::generators;
//! use defender_num::Ratio;
//!
//! // A 3×4 bipartite network, a defender scanning k = 2 links, ν = 6 viruses.
//! let graph = generators::complete_bipartite(3, 4);
//! let game = TupleGame::new(&graph, 2, 6)?;
//! let ne = a_tuple_bipartite(&game)?; // Theorem 5.1
//!
//! // Corollary 4.10: expected arrests are k·ν/|IS| — linear in k.
//! assert_eq!(ne.defender_gain(), Ratio::new(2 * 6, 4));
//! # Ok::<(), defender_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod error;

pub mod algorithm;
pub mod best_response;
pub mod bipartite;
pub mod characterization;
pub mod covering_ne;
pub mod defense;
pub mod dynamics;
pub mod exhaustive;
pub mod gain;
pub mod k_matching;
pub mod matching_ne;
pub mod model;
pub mod path_model;
pub mod payoff;
pub mod pure;
pub mod reduction;
pub mod simulate;
pub mod solve;
pub mod tree;
pub mod tuple;

pub use algorithm::a_tuple;
pub use bipartite::{a_tuple_bipartite, a_tuple_bipartite_report};
pub use error::CoreError;
