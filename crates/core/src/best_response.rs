//! Best-response oracles for both kinds of player.
//!
//! The attacker side is easy: a best response is any vertex of minimum hit
//! probability. The defender side is *maximum coverage* — pick `k` edges
//! maximizing the covered attacker mass — which is NP-hard in general
//! (DESIGN.md §5.3), so two oracles are provided: an exhaustive exact one
//! (guarded) and the classical greedy `(1 − 1/e)`-approximation. These
//! power the fictitious-play dynamics ([`crate::dynamics`]) and give
//! experiments a refutation witness for non-equilibria.

use defender_graph::{EdgeId, VertexId};
use defender_num::Ratio;

use crate::model::{MixedConfig, TupleGame};
use crate::payoff;
use crate::tuple::{all_tuples, Tuple};
use crate::CoreError;

/// The attacker's best response to a configuration: a vertex of minimum
/// hit probability, together with the escape probability it secures.
///
/// Ties break toward the smallest vertex id (deterministic).
#[must_use]
pub fn attacker_best_response(game: &TupleGame<'_>, config: &MixedConfig) -> (VertexId, Ratio) {
    let hit = payoff::hit_probabilities(game, config);
    let v = game
        .graph()
        .vertices()
        // lint: allow(index) hit is sized by vertex_count; VertexId::index is in range
        .min_by_key(|v| hit[v.index()])
        // lint: allow(panic) game graphs are validated non-empty
        .expect("game graphs are non-empty");
    // lint: allow(index) hit is sized by vertex_count; VertexId::index is in range
    (v, Ratio::ONE - hit[v.index()])
}

/// The defender's *exact* best response to an attacker mass vector:
/// the tuple maximizing covered mass, by exhaustive enumeration.
///
/// # Errors
///
/// Returns [`CoreError::TooLarge`] when `C(m, k)` exceeds `limit`.
pub fn defender_best_response_exact(
    game: &TupleGame<'_>,
    mass: &[Ratio],
    limit: usize,
) -> Result<(Tuple, Ratio), CoreError> {
    let tuples = all_tuples(game.graph(), game.k(), limit)?;
    let best = tuples
        .into_iter()
        .map(|t| {
            let value = payoff::tuple_mass_with(mass, game, &t);
            (t, value)
        })
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
        // lint: allow(panic) k <= m guarantees at least one candidate tuple
        .expect("k ≤ m guarantees at least one tuple");
    Ok(best)
}

/// The defender's *greedy* best response: repeatedly add the edge with the
/// largest marginal newly-covered mass. Standard maximum-coverage
/// greedy — at least `(1 − 1/e)` of the optimum, in `O(k·m)`.
#[must_use]
pub fn defender_best_response_greedy(game: &TupleGame<'_>, mass: &[Ratio]) -> (Tuple, Ratio) {
    let graph = game.graph();
    let mut covered = vec![false; graph.vertex_count()];
    let mut chosen: Vec<EdgeId> = Vec::with_capacity(game.k());
    let mut picked = vec![false; graph.edge_count()];
    let mut total = Ratio::ZERO;
    for _ in 0..game.k() {
        let mut best: Option<(EdgeId, Ratio)> = None;
        for e in graph.edges() {
            // lint: allow(index) picked is sized by edge_count; EdgeId::index is in range
            if picked[e.index()] {
                continue;
            }
            let ep = graph.endpoints(e);
            let mut marginal = Ratio::ZERO;
            // lint: allow(index) covered is sized by vertex_count; VertexId::index is in range
            if !covered[ep.u().index()] {
                // lint: allow(index) mass is sized by vertex_count; VertexId::index is in range
                marginal += mass[ep.u().index()];
            }
            // lint: allow(index) covered is sized by vertex_count; VertexId::index is in range
            if !covered[ep.v().index()] {
                // lint: allow(index) mass is sized by vertex_count; VertexId::index is in range
                marginal += mass[ep.v().index()];
            }
            if best.as_ref().map_or(true, |(_, b)| marginal > *b) {
                best = Some((e, marginal));
            }
        }
        // lint: allow(panic) k <= m leaves an unpicked edge each greedy round
        let (e, marginal) = best.expect("k ≤ m leaves an unpicked edge");
        // lint: allow(index) picked is sized by edge_count; EdgeId::index is in range
        picked[e.index()] = true;
        let ep = graph.endpoints(e);
        // lint: allow(index) covered is sized by vertex_count; VertexId::index is in range
        covered[ep.u().index()] = true;
        // lint: allow(index) covered is sized by vertex_count; VertexId::index is in range
        covered[ep.v().index()] = true;
        chosen.push(e);
        total += marginal;
    }
    (
        // lint: allow(panic) greedy picks k distinct edges by construction
        Tuple::new(chosen).expect("greedy picks distinct edges"),
        total,
    )
}

/// Convenience: the defender's best response against a full configuration
/// (exact when feasible, greedy otherwise), returning which oracle ran.
#[must_use]
pub fn defender_best_response_auto(
    game: &TupleGame<'_>,
    config: &MixedConfig,
    limit: usize,
) -> (Tuple, Ratio, bool) {
    let mass = payoff::vertex_mass(game, config);
    match defender_best_response_exact(game, &mass, limit) {
        Ok((t, v)) => (t, v, true),
        Err(_) => {
            let (t, v) = defender_best_response_greedy(game, &mass);
            (t, v, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::a_tuple_bipartite;
    use defender_game::MixedStrategy;
    use defender_graph::generators;
    use defender_num::rng::{Rng, StdRng};

    #[test]
    fn attacker_picks_least_hit_vertex() {
        let g = generators::path(4);
        let game = TupleGame::new(&g, 1, 1).unwrap();
        let config = MixedConfig::symmetric(
            &game,
            MixedStrategy::pure(VertexId::new(0)),
            MixedStrategy::pure(Tuple::single(EdgeId::new(0))),
        )
        .unwrap();
        let (v, escape) = attacker_best_response(&game, &config);
        assert_eq!(v, VertexId::new(2), "first vertex outside the covered edge");
        assert_eq!(escape, Ratio::ONE);
    }

    #[test]
    fn attacker_indifferent_at_equilibrium() {
        let g = generators::cycle(8);
        let game = TupleGame::new(&g, 2, 3).unwrap();
        let ne = a_tuple_bipartite(&game).unwrap();
        let (_, escape) = attacker_best_response(&game, ne.config());
        // Best response secures exactly the equilibrium escape probability.
        assert_eq!(escape, Ratio::ONE - ne.hit_probability());
    }

    #[test]
    fn defender_exact_matches_equilibrium_value() {
        let g = generators::cycle(8);
        let game = TupleGame::new(&g, 2, 3).unwrap();
        let ne = a_tuple_bipartite(&game).unwrap();
        let mass = payoff::vertex_mass(&game, ne.config());
        let (_, value) = defender_best_response_exact(&game, &mass, 100_000).unwrap();
        assert_eq!(
            value,
            ne.defender_gain(),
            "no tuple beats the equilibrium gain"
        );
    }

    #[test]
    fn greedy_within_bound_of_exact() {
        let mut rng = StdRng::seed_from_u64(17);
        for trial in 0..25 {
            let g = generators::gnp_connected(9, 0.3, &mut rng);
            let k = 1 + trial % 3;
            if k > g.edge_count() {
                continue;
            }
            let game = TupleGame::new(&g, k, 3).unwrap();
            // Random attacker mass.
            let mass: Vec<Ratio> = g
                .vertices()
                .map(|_| Ratio::new(rng.gen_range(0..5) as i64, 1))
                .collect();
            let (_, exact) = defender_best_response_exact(&game, &mass, 100_000).unwrap();
            let (_, greedy) = defender_best_response_greedy(&game, &mass);
            assert!(greedy <= exact);
            // (1 - 1/e) ≈ 0.632; compare via rationals scaled by 1000.
            assert!(
                greedy * Ratio::from(1000) >= exact * Ratio::new(632, 1),
                "trial {trial}: greedy {greedy} vs exact {exact}"
            );
        }
    }

    #[test]
    fn greedy_is_exact_on_uniform_independent_mass() {
        // The k-matching situation: each edge covers at most one massive
        // vertex, so greedy's marginal gains are flat and optimal.
        let g = generators::complete_bipartite(3, 5);
        let game = TupleGame::new(&g, 2, 4).unwrap();
        let ne = a_tuple_bipartite(&game).unwrap();
        let mass = payoff::vertex_mass(&game, ne.config());
        let (_, greedy) = defender_best_response_greedy(&game, &mass);
        assert_eq!(greedy, ne.defender_gain());
    }

    #[test]
    fn auto_reports_oracle_used() {
        let g = generators::cycle(6);
        let game = TupleGame::new(&g, 2, 2).unwrap();
        let ne = a_tuple_bipartite(&game).unwrap();
        let (_, _, exact_used) = defender_best_response_auto(&game, ne.config(), 100_000);
        assert!(exact_used);
        let (_, _, exact_used) = defender_best_response_auto(&game, ne.config(), 1);
        assert!(!exact_used);
    }
}
