//! The Path model — the variant of \[8\] where the defender cleans a
//! *simple path* of `k` edges instead of an arbitrary edge tuple.
//!
//! The paper's related-work section points at this generalization; we
//! implement its pure-equilibrium theory (the analogue of Theorem 3.1),
//! a structural mixed equilibrium on cycles, and an exhaustive verifier
//! over the path strategy space.
//!
//! The analogue of Theorem 3.1 is sharper here: a path of `k` edges has
//! exactly `k + 1` distinct vertices, so a pure NE exists **iff**
//! `k = n − 1` and `G` has a Hamiltonian path. Existence is therefore
//! NP-hard in general — a real qualitative price for the defender's
//! shape constraint, in contrast to the polynomial Corollary 3.2 — and we
//! decide it exactly with a Held–Karp bitmask DP on small graphs.

use defender_game::MixedStrategy;
use defender_graph::{Graph, VertexId};
use defender_num::Ratio;

use crate::model::TupleGame;
use crate::CoreError;

/// A simple path with `k` edges (`k + 1` distinct vertices), the
/// defender's pure strategy in the Path model. Canonicalized so the first
/// endpoint is the smaller of the two ends (paths are undirected).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathStrategy {
    vertices: Vec<VertexId>,
}

impl PathStrategy {
    /// Builds a path strategy from its vertex sequence, validating
    /// simplicity and adjacency in `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ConfigMismatch`] when the sequence is shorter
    /// than two vertices, repeats a vertex, or jumps a non-edge.
    pub fn new(graph: &Graph, mut vertices: Vec<VertexId>) -> Result<PathStrategy, CoreError> {
        if vertices.len() < 2 {
            return Err(CoreError::ConfigMismatch {
                reason: "a path needs at least one edge".into(),
            });
        }
        let mut seen = vec![false; graph.vertex_count()];
        for &v in &vertices {
            // lint: allow(index) seen is sized by vertex_count; VertexId::index is in range
            if seen[v.index()] {
                return Err(CoreError::ConfigMismatch {
                    reason: format!("path repeats vertex {v}"),
                });
            }
            // lint: allow(index) seen is sized by vertex_count; VertexId::index is in range
            seen[v.index()] = true;
        }
        for w in vertices.windows(2) {
            // lint: allow(index) windows(2) yields exactly two elements
            if !graph.has_edge(w[0], w[1]) {
                return Err(CoreError::ConfigMismatch {
                    // lint: allow(index) windows(2) yields exactly two elements
                    reason: format!("({}, {}) is not an edge", w[0], w[1]),
                });
            }
        }
        if vertices.first() > vertices.last() {
            vertices.reverse();
        }
        Ok(PathStrategy { vertices })
    }

    /// The number of edges `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.vertices.len() - 1
    }

    /// The vertex sequence (canonical orientation).
    #[must_use]
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Whether the path covers `v`.
    #[must_use]
    pub fn covers(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }
}

/// Enumerates every simple path with exactly `k` edges (as undirected
/// canonical strategies) by DFS.
///
/// # Errors
///
/// Returns [`CoreError::TooLarge`] when more than `limit` paths exist.
pub fn all_paths(graph: &Graph, k: usize, limit: usize) -> Result<Vec<PathStrategy>, CoreError> {
    let mut out = std::collections::BTreeSet::new();
    let mut stack: Vec<VertexId> = Vec::with_capacity(k + 1);
    let mut on_path = vec![false; graph.vertex_count()];

    fn dfs(
        graph: &Graph,
        k: usize,
        limit: usize,
        stack: &mut Vec<VertexId>,
        on_path: &mut [bool],
        out: &mut std::collections::BTreeSet<PathStrategy>,
    ) -> Result<(), CoreError> {
        if stack.len() == k + 1 {
            // lint: allow(panic) DFS extends along edges only, so the stack is a valid path
            let path = PathStrategy::new(graph, stack.clone()).expect("DFS builds valid paths");
            out.insert(path);
            if out.len() > limit {
                return Err(CoreError::TooLarge {
                    what: format!("simple paths with {k} edges"),
                    limit,
                });
            }
            return Ok(());
        }
        // lint: allow(panic) the stack starts with the source and never empties
        let current = *stack.last().expect("stack starts non-empty");
        let neighbors: Vec<VertexId> = graph.neighbors(current).collect();
        for w in neighbors {
            // lint: allow(index) on_path is sized by vertex_count; VertexId::index is in range
            if !on_path[w.index()] {
                // lint: allow(index) on_path is sized by vertex_count; VertexId::index is in range
                on_path[w.index()] = true;
                stack.push(w);
                dfs(graph, k, limit, stack, on_path, out)?;
                stack.pop();
                // lint: allow(index) on_path is sized by vertex_count; VertexId::index is in range
                on_path[w.index()] = false;
            }
        }
        Ok(())
    }

    for v in graph.vertices() {
        // lint: allow(index) on_path is sized by vertex_count; VertexId::index is in range
        on_path[v.index()] = true;
        stack.push(v);
        dfs(graph, k, limit, &mut stack, &mut on_path, &mut out)?;
        stack.pop();
        // lint: allow(index) on_path is sized by vertex_count; VertexId::index is in range
        on_path[v.index()] = false;
    }
    Ok(out.into_iter().collect())
}

/// Held–Karp bitmask DP: a Hamiltonian path of `graph`, if one exists.
///
/// # Panics
///
/// Panics if the graph has more than 20 vertices.
#[must_use]
pub fn hamiltonian_path_small(graph: &Graph) -> Option<Vec<VertexId>> {
    let n = graph.vertex_count();
    assert!(n <= 20, "Hamiltonian DP limited to 20 vertices, got {n}");
    if n == 0 {
        return None;
    }
    if n == 1 {
        return Some(vec![VertexId::new(0)]);
    }
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    // reach[mask][v]: predecessor vertex + 1, 0 = unreachable, usize::MAX marker via Option.
    let mut pred: Vec<Vec<Option<usize>>> = vec![vec![None; n]; 1 << n];
    let mut reachable = vec![vec![false; n]; 1 << n];
    for v in 0..n {
        reachable[1 << v][v] = true;
    }
    for mask in 1u32..=full {
        for last in 0..n {
            if mask & (1 << last) == 0 || !reachable[mask as usize][last] {
                continue;
            }
            for w in graph.neighbors(VertexId::new(last)) {
                let wi = w.index();
                if mask & (1 << wi) != 0 {
                    continue;
                }
                let next = mask | (1 << wi);
                if !reachable[next as usize][wi] {
                    reachable[next as usize][wi] = true;
                    pred[next as usize][wi] = Some(last);
                }
            }
        }
    }
    let end = (0..n).find(|&v| reachable[full as usize][v])?;
    // Reconstruct.
    let mut path = Vec::with_capacity(n);
    let mut mask = full;
    let mut v = end;
    loop {
        path.push(VertexId::new(v));
        match pred[mask as usize][v] {
            Some(p) => {
                mask &= !(1 << v);
                v = p;
            }
            None => break,
        }
    }
    path.reverse();
    Some(path)
}

/// Outcome of the Path-model pure-NE question.
#[derive(Clone, Debug)]
pub enum PathPureOutcome {
    /// A pure NE exists: the defender walks a Hamiltonian path.
    Exists {
        /// The covering path (`k = n − 1` edges).
        path: PathStrategy,
    },
    /// No pure NE; the reason distinguishes the two failure modes.
    None {
        /// `true` when `k ≠ n − 1` (a `k`-edge path covers `k + 1 < n` or
        /// cannot exist); `false` when `k = n − 1` but no Hamiltonian path.
        width_mismatch: bool,
    },
}

impl PathPureOutcome {
    /// Whether a pure NE exists.
    #[must_use]
    pub fn exists(&self) -> bool {
        matches!(self, PathPureOutcome::Exists { .. })
    }
}

/// The Path-model analogue of Theorem 3.1: a pure NE exists iff the
/// defender can cover all of `V` with one simple `k`-edge path — i.e.
/// `k = n − 1` and `G` is traceable.
///
/// # Errors
///
/// Returns [`CoreError::TooLarge`] for graphs over 20 vertices (existence
/// is NP-hard; only the exact small-instance decider is provided).
pub fn pure_ne_existence_path(game: &TupleGame<'_>) -> Result<PathPureOutcome, CoreError> {
    let graph = game.graph();
    let n = graph.vertex_count();
    if n > 20 {
        return Err(CoreError::TooLarge {
            what: "Hamiltonian-path decision".into(),
            limit: 20,
        });
    }
    if game.k() + 1 != n {
        return Ok(PathPureOutcome::None {
            width_mismatch: true,
        });
    }
    match hamiltonian_path_small(graph) {
        Some(vertices) => Ok(PathPureOutcome::Exists {
            // lint: allow(panic) the Hamiltonian DP reconstructs an edge-connected order
            path: PathStrategy::new(graph, vertices).expect("DP emits a valid path"),
        }),
        None => Ok(PathPureOutcome::None {
            width_mismatch: false,
        }),
    }
}

/// A mixed Nash equilibrium of the Path model.
#[derive(Clone, Debug)]
pub struct PathModelNe {
    /// The common attacker strategy (symmetric profile).
    pub attacker: MixedStrategy<VertexId>,
    /// The defender's mixed strategy over paths.
    pub defender: MixedStrategy<PathStrategy>,
    /// The defender's expected gain.
    pub defender_gain: Ratio,
}

/// The rotation equilibrium of the Path model on the cycle `C_n`:
/// attackers uniform on all `n` vertices, defender uniform on the `n`
/// rotations of a `k`-edge arc. Every vertex is hit with probability
/// `(k + 1)/n` and every `k`-edge path of `C_n` is an arc covering exactly
/// `k + 1` vertices, so both players are indifferent — a Nash equilibrium
/// with `IP_tp = (k + 1)·ν/n`.
///
/// # Errors
///
/// Returns [`CoreError::ConfigMismatch`] when the graph is not a cycle or
/// `k ≥ n − 1` fails (`k + 1 ≤ n` arcs must be proper).
pub fn cycle_path_ne(game: &TupleGame<'_>) -> Result<PathModelNe, CoreError> {
    let graph = game.graph();
    let n = graph.vertex_count();
    let k = game.k();
    let is_cycle = defender_graph::properties::regularity(graph) == Some(2)
        && defender_graph::properties::is_connected(graph)
        && graph.edge_count() == n;
    if !is_cycle {
        return Err(CoreError::ConfigMismatch {
            reason: "the rotation equilibrium is defined on cycles".into(),
        });
    }
    if k + 1 > n {
        return Err(CoreError::ConfigMismatch {
            reason: format!("an arc of {k} edges does not fit in C{n}"),
        });
    }
    // Walk the cycle once to get a rotation order.
    let order = cycle_order(graph);
    let arcs: Vec<PathStrategy> = (0..n)
        .map(|start| {
            // lint: allow(arith) n >= 1: cycle graphs are nonempty
            let vertices: Vec<VertexId> = (0..=k).map(|j| order[(start + j) % n]).collect(); // lint: allow(index) (start + j) % n is below n = order.len()
                                                                                             // lint: allow(panic) consecutive cycle vertices are adjacent, so arcs are paths
            PathStrategy::new(graph, vertices).expect("arcs of a cycle are paths")
        })
        .collect();
    let attacker = MixedStrategy::uniform(graph.vertices().collect());
    let defender = MixedStrategy::uniform(arcs);
    // lint: allow(arith) n = vertex_count >= 1 for a constructed cycle game
    let defender_gain = Ratio::from(k + 1) * Ratio::from(game.attacker_count()) / Ratio::from(n);
    Ok(PathModelNe {
        attacker,
        defender,
        defender_gain,
    })
}

/// The vertices of a cycle in traversal order.
fn cycle_order(graph: &Graph) -> Vec<VertexId> {
    let start = VertexId::new(0);
    let mut order = vec![start];
    let mut prev = start;
    // lint: allow(panic) cycle graphs are 2-regular; every vertex has neighbors
    let mut current = graph.neighbors(start).next().expect("cycles have edges");
    while current != start {
        order.push(current);
        let next = graph
            .neighbors(current)
            .find(|&w| w != prev)
            // lint: allow(panic) cycle vertices have exactly two neighbors
            .expect("cycle vertices have two neighbors");
        prev = current;
        current = next;
    }
    order
}

/// Exhaustively verifies a Path-model mixed profile: attackers must sit on
/// minimum-hit vertices and the defender's support paths must carry the
/// maximum attacker mass over *all* `k`-edge paths.
///
/// # Errors
///
/// Returns [`CoreError::TooLarge`] when the path space exceeds `limit`.
pub fn verify_path_ne(
    game: &TupleGame<'_>,
    ne: &PathModelNe,
    limit: usize,
) -> Result<bool, CoreError> {
    let graph = game.graph();
    // Hit probabilities.
    let mut hit = vec![Ratio::ZERO; graph.vertex_count()];
    for (p, prob) in ne.defender.iter() {
        for &v in p.vertices() {
            // lint: allow(index) hit is sized by vertex_count; VertexId::index is in range
            hit[v.index()] += prob;
        }
    }
    let min_hit = hit.iter().copied().min().unwrap_or(Ratio::ZERO);
    for (v, prob) in ne.attacker.iter() {
        // lint: allow(index) hit is sized by vertex_count; VertexId::index is in range
        if prob > Ratio::ZERO && hit[v.index()] != min_hit {
            return Ok(false);
        }
    }
    // Masses (symmetric attackers).
    let nu = Ratio::from(game.attacker_count());
    let mass: Vec<Ratio> = graph
        .vertices()
        .map(|v| ne.attacker.probability(&v) * nu)
        .collect();
    let path_mass =
        // lint: allow(index) mass is sized by vertex_count; VertexId::index is in range
        |p: &PathStrategy| -> Ratio { p.vertices().iter().map(|v| mass[v.index()]).sum() };
    let max_mass = all_paths(graph, game.k(), limit)?
        .iter()
        .map(path_mass)
        .max()
        .unwrap_or(Ratio::ZERO);
    for (p, prob) in ne.defender.iter() {
        if prob > Ratio::ZERO && path_mass(p) != max_mass {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_graph::generators;

    #[test]
    fn path_strategy_validation() {
        let g = generators::cycle(5);
        let order: Vec<VertexId> = [0, 1, 2].into_iter().map(VertexId::new).collect();
        let p = PathStrategy::new(&g, order).unwrap();
        assert_eq!(p.k(), 2);
        assert!(p.covers(VertexId::new(1)));
        assert!(!p.covers(VertexId::new(3)));

        let not_adjacent = PathStrategy::new(&g, vec![VertexId::new(0), VertexId::new(2)]);
        assert!(not_adjacent.is_err());
        let repeated = PathStrategy::new(
            &g,
            vec![VertexId::new(0), VertexId::new(1), VertexId::new(0)],
        );
        assert!(repeated.is_err());
        let short = PathStrategy::new(&g, vec![VertexId::new(0)]);
        assert!(short.is_err());
    }

    #[test]
    fn canonical_orientation() {
        let g = generators::path(3);
        let forward = PathStrategy::new(
            &g,
            vec![VertexId::new(0), VertexId::new(1), VertexId::new(2)],
        )
        .unwrap();
        let backward = PathStrategy::new(
            &g,
            vec![VertexId::new(2), VertexId::new(1), VertexId::new(0)],
        )
        .unwrap();
        assert_eq!(forward, backward);
    }

    #[test]
    fn all_paths_counts() {
        // C5: k-edge arcs, one per starting vertex: 5 for each k < 5.
        let g = generators::cycle(5);
        assert_eq!(all_paths(&g, 1, 1000).unwrap().len(), 5);
        assert_eq!(all_paths(&g, 2, 1000).unwrap().len(), 5);
        assert_eq!(all_paths(&g, 3, 1000).unwrap().len(), 5);
        // P4 has 3 single edges, 2 two-edge paths, 1 three-edge path.
        let p = generators::path(4);
        assert_eq!(all_paths(&p, 1, 1000).unwrap().len(), 3);
        assert_eq!(all_paths(&p, 2, 1000).unwrap().len(), 2);
        assert_eq!(all_paths(&p, 3, 1000).unwrap().len(), 1);
    }

    #[test]
    fn all_paths_guard_fires() {
        let g = generators::complete(8);
        assert!(matches!(
            all_paths(&g, 5, 100),
            Err(CoreError::TooLarge { .. })
        ));
    }

    #[test]
    fn hamiltonian_dp_on_known_graphs() {
        assert!(hamiltonian_path_small(&generators::path(6)).is_some());
        assert!(hamiltonian_path_small(&generators::cycle(7)).is_some());
        assert!(hamiltonian_path_small(&generators::complete(5)).is_some());
        assert!(hamiltonian_path_small(&generators::petersen()).is_some());
        assert!(hamiltonian_path_small(&generators::star(3)).is_none());
        assert!(hamiltonian_path_small(&generators::complete_bipartite(2, 4)).is_none());
    }

    #[test]
    fn hamiltonian_dp_result_is_a_valid_path() {
        let g = generators::grid(3, 3);
        let path = hamiltonian_path_small(&g).expect("grids are traceable");
        assert_eq!(path.len(), 9);
        let strategy = PathStrategy::new(&g, path).unwrap();
        assert_eq!(strategy.k(), 8);
    }

    #[test]
    fn pure_frontier_is_hamiltonicity() {
        // C6: traceable; pure NE iff k = 5.
        let g = generators::cycle(6);
        for k in 1..=5usize {
            let game = TupleGame::new(&g, k, 2).unwrap();
            let outcome = pure_ne_existence_path(&game).unwrap();
            assert_eq!(outcome.exists(), k == 5, "k = {k}");
        }
        // Star K_{1,4}: k = n − 1 = 4 > m? m = 4 ≥ 4 — valid width, but not
        // traceable.
        let star = generators::star(4);
        let game = TupleGame::new(&star, 4, 2).unwrap();
        let outcome = pure_ne_existence_path(&game).unwrap();
        assert!(!outcome.exists());
        assert!(matches!(
            outcome,
            PathPureOutcome::None {
                width_mismatch: false
            }
        ));
    }

    #[test]
    fn large_instances_rejected() {
        let g = generators::cycle(30);
        let game = TupleGame::new(&g, 2, 1).unwrap();
        assert!(matches!(
            pure_ne_existence_path(&game),
            Err(CoreError::TooLarge { .. })
        ));
    }

    #[test]
    fn rotation_equilibrium_verifies() {
        for n in [5usize, 6, 9] {
            let g = generators::cycle(n);
            for k in 1..=3usize {
                let game = TupleGame::new(&g, k, 4).unwrap();
                let ne = cycle_path_ne(&game).unwrap();
                assert_eq!(
                    ne.defender_gain,
                    Ratio::from(k + 1) * Ratio::from(4) / Ratio::from(n)
                );
                assert!(verify_path_ne(&game, &ne, 10_000).unwrap(), "C{n}, k = {k}");
            }
        }
    }

    #[test]
    fn rotation_equilibrium_beats_tuple_model_gain() {
        // On cycles the path defender covers k + 1 vertices per strategy vs
        // the tuple defender's 2k — the tuple defender does better for
        // k ≥ 1 (2k ≥ k + 1), quantifying the cost of the path shape.
        let g = generators::cycle(8);
        let game = TupleGame::new(&g, 2, 4).unwrap();
        let path_ne = cycle_path_ne(&game).unwrap();
        let tuple_ne = crate::covering_ne::covering_ne(&game).unwrap();
        assert!(tuple_ne.defender_gain() >= path_ne.defender_gain);
    }

    #[test]
    fn non_cycles_rejected_for_rotation_ne() {
        let g = generators::path(5);
        let game = TupleGame::new(&g, 2, 1).unwrap();
        assert!(cycle_path_ne(&game).is_err());
    }

    #[test]
    fn verify_rejects_bad_profiles() {
        let g = generators::cycle(6);
        let game = TupleGame::new(&g, 2, 2).unwrap();
        let mut ne = cycle_path_ne(&game).unwrap();
        // Attacker concentrated on one vertex: defender support no longer
        // uniformly maximal.
        ne.attacker = MixedStrategy::pure(VertexId::new(0));
        assert!(!verify_path_ne(&game, &ne, 10_000).unwrap());
    }
}
