//! Equilibrium memoization keyed by canonical graph form.
//!
//! Sweeps over generated corpora solve the *same* game over and over:
//! relabeled copies of one graph are distinct instances to the runner but
//! identical games mathematically. This crate makes that repeat work
//! free. Each instance is reduced to its canonical form
//! ([`defender_graph::canonical`]); the exact equilibrium of the
//! canonical representative is solved once and memoized under the key
//! `(canonical graph6, k, ν)`; every later isomorphic instance gets the
//! memoized answer relabeled back through the inverse of its canonical
//! permutation.
//!
//! # Telemetry contract
//!
//! Counter determinism is the workspace's load-bearing invariant: merged
//! sidecar counters must be byte-identical across `--jobs` and `--shards`
//! and across repeated runs. A naive cache breaks this — run 1 pays the
//! solve ticks on misses, run 2 pays none. The fix is **delta replay**:
//!
//! - on a miss the canonical solve runs inside [`defender_obs::captured`],
//!   so its counter ticks are diverted into a per-class delta vector and
//!   stored with the entry;
//! - *every* lookup — hit or miss — replays the class deltas exactly once
//!   via [`defender_obs::replay_counters`].
//!
//! Cache *bookkeeping* — computing the canonical key, materializing the
//! canonical graph and game on a miss — runs under
//! [`defender_obs::suppressed`] (or counter-free paths) instead: the
//! caller already built and counted its own graph and game, so the
//! bookkeeping copies must tick nothing. A `--cache` run's judged
//! counters therefore match an uncached run's, not just other cached
//! runs.
//!
//! Main-section counters are therefore `Σ over instances of
//! class-deltas` regardless of cache state, jobs width, or shard cuts.
//! The cache's own `cache.hits` / `cache.misses` / `cache.canon_ns`
//! counters *do* vary between runs by design and are segregated into the
//! sidecar's run-variant section alongside `par.*` and `sw.*`.
//!
//! # Trust model
//!
//! The persisted sidecar is plain JSON a human can edit. Entries loaded
//! from disk are untrusted: the first time one is used, its claimed
//! equilibrium is re-verified through the exact Nash verifier
//! ([`defender_core::exhaustive::GameAdapter::verify`]) on the canonical
//! game (under [`defender_obs::suppressed`], so verification never
//! perturbs counters). A stale or hand-edited entry that fails
//! verification is recomputed and overwritten — the cache can serve a
//! wrong answer to no one.
//!
//! # Examples
//!
//! ```
//! use defender_cache::EquilibriumCache;
//! use defender_core::model::TupleGame;
//! use defender_graph::generators;
//!
//! let cache = EquilibriumCache::in_memory();
//! let c5 = generators::cycle(5);
//! let game = TupleGame::new(&c5, 1, 1).unwrap();
//! let first = cache.solve(&game, 10_000).unwrap();
//! let again = cache.solve(&game, 10_000).unwrap(); // memo hit
//! assert_eq!(first.value, again.value);
//! assert_eq!(cache.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use defender_core::exhaustive::GameAdapter;
use defender_core::model::{MixedConfig, TupleGame};
use defender_core::payoff;
use defender_core::solve::{solve_exact_hinted, ExactEquilibrium};
use defender_core::tuple::Tuple;
use defender_core::CoreError;
use defender_game::MixedStrategy;
use defender_graph::canonical::{canonical_form, CanonicalForm};
use defender_graph::graph6::from_graph6;
use defender_graph::{Graph, VertexId};
use defender_num::Ratio;
use defender_obs as obs;
use defender_obs::json::{self, JsonArray, JsonObject, JsonValue};

/// Name of the sidecar file inside a `--cache <DIR>` directory.
pub const SIDECAR_FILE: &str = "equilibria.json";

/// Format tag written into (and required from) the sidecar.
pub const SIDECAR_FORMAT: &str = "defender-cache/v1";

/// Memo key: `(canonical graph6, k, ν)`.
pub type CacheKey = (String, usize, usize);

/// One memoized equilibrium, in canonical vertex labels.
#[derive(Clone, Debug, PartialEq, Eq)]
struct CacheEntry {
    /// Single-attacker game value (iso-invariant).
    value: Ratio,
    /// Attacker support as `(canonical vertex, probability)`.
    attacker: Vec<(usize, Ratio)>,
    /// Defender support: each tuple as its canonical edge endpoint pairs.
    defender: Vec<(Vec<(usize, usize)>, Ratio)>,
    /// Counter deltas of the canonical solve, replayed on every lookup.
    counters: Vec<(String, u64)>,
    /// Whether this entry has passed exact NE verification in-process.
    /// Entries born from a solve are trusted; entries loaded from disk
    /// start `false` and are verified lazily on first use.
    verified: bool,
}

/// Equilibrium memo store with optional JSON-sidecar persistence.
pub struct EquilibriumCache {
    dir: Option<PathBuf>,
    store: Mutex<BTreeMap<CacheKey, CacheEntry>>,
    /// Whether the store has changed since the sidecar was last written.
    /// Set on every insert, cleared by a successful [`persist`](Self::persist);
    /// lets a high-QPS server flush on an interval instead of rewriting
    /// the whole sidecar once per miss ([`flush_if_dirty`](Self::flush_if_dirty)).
    dirty: AtomicBool,
}

impl fmt::Debug for EquilibriumCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EquilibriumCache")
            .field("dir", &self.dir)
            .field("entries", &self.len())
            .finish()
    }
}

impl EquilibriumCache {
    /// A purely in-process cache; [`persist`](Self::persist) is a no-op.
    #[must_use]
    pub fn in_memory() -> EquilibriumCache {
        EquilibriumCache {
            dir: None,
            store: Mutex::new(BTreeMap::new()),
            dirty: AtomicBool::new(false),
        }
    }

    /// Opens (or initializes) a persistent cache rooted at `dir`.
    ///
    /// Creates the directory if needed and loads the sidecar when one is
    /// present. Loaded entries are untrusted until first use (see the
    /// crate docs for the trust model).
    ///
    /// # Errors
    ///
    /// I/O failures creating the directory or reading the sidecar, and a
    /// malformed sidecar (reported as [`io::ErrorKind::InvalidData`]).
    pub fn open(dir: &Path) -> io::Result<EquilibriumCache> {
        fs::create_dir_all(dir)?;
        let sidecar = dir.join(SIDECAR_FILE);
        let store = if sidecar.exists() {
            parse_sidecar(&fs::read_to_string(&sidecar)?).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", sidecar.display()),
                )
            })?
        } else {
            BTreeMap::new()
        };
        Ok(EquilibriumCache {
            dir: Some(dir.to_path_buf()),
            store: Mutex::new(store),
            dirty: AtomicBool::new(false),
        })
    }

    /// Number of memoized equivalence classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.guard().len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes the sidecar (no-op for [`in_memory`](Self::in_memory)
    /// caches).
    ///
    /// The write is deterministic: entries are emitted in key order, so
    /// persisting the same logical state twice yields byte-identical
    /// files.
    ///
    /// # Errors
    ///
    /// I/O failures writing the sidecar.
    pub fn persist(&self) -> io::Result<()> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        let text = render_sidecar(&self.guard());
        let tmp = dir.join(format!("{SIDECAR_FILE}.tmp"));
        fs::write(&tmp, &text)?;
        fs::rename(&tmp, dir.join(SIDECAR_FILE))?;
        // Cleared only after the rename lands: a failed write leaves the
        // store dirty, so the next flush retries rather than losing data.
        self.dirty.store(false, Ordering::Release);
        Ok(())
    }

    /// Writes the sidecar only when the store changed since the last
    /// write. Returns whether a write happened.
    ///
    /// This is the batched-flush half of the persistence contract: a
    /// server storing misses at high QPS marks the store dirty per insert
    /// and calls this on an interval (and at shutdown), so the sidecar is
    /// rewritten once per flush window instead of once per store. The
    /// bytes written are identical to calling [`persist`](Self::persist)
    /// after every store — the sidecar is a pure function of the store
    /// contents (entries render in key order).
    ///
    /// # Errors
    ///
    /// I/O failures writing the sidecar (the store stays dirty, so a
    /// later flush retries).
    pub fn flush_if_dirty(&self) -> io::Result<bool> {
        if !self.dirty.load(Ordering::Acquire) {
            return Ok(false);
        }
        self.persist()?;
        Ok(true)
    }

    /// Whether the store changed since the sidecar was last written.
    #[must_use]
    pub fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Acquire)
    }

    /// Solves `Π_k(G)` through the memo (no warm-start hint).
    ///
    /// # Errors
    ///
    /// Same as [`defender_core::solve::solve_exact`].
    pub fn solve(
        &self,
        game: &TupleGame<'_>,
        tuple_limit: usize,
    ) -> Result<ExactEquilibrium, CoreError> {
        self.solve_with_hint(game, tuple_limit, |_| None)
    }

    /// Solves `Π_k(G)` through the memo, offering `hint` a chance to
    /// warm-start the LP on a miss.
    ///
    /// `hint` receives the **canonical** game (the one actually solved)
    /// and may return `(tuple_support, vertex_support)` index sets — the
    /// contract of [`solve_exact_hinted`]. It runs inside the captured
    /// counter region, so any counters it ticks become part of the
    /// class's replayed deltas.
    ///
    /// # Errors
    ///
    /// Same as [`defender_core::solve::solve_exact`].
    pub fn solve_with_hint<F>(
        &self,
        game: &TupleGame<'_>,
        tuple_limit: usize,
        hint: F,
    ) -> Result<ExactEquilibrium, CoreError>
    where
        F: Fn(&TupleGame<'_>) -> Option<(Vec<usize>, Vec<usize>)>,
    {
        let graph = game.graph();
        let k = game.k();
        let nu = game.attacker_count();

        let t0 = obs::trace::elapsed_ns();
        let form = canonical_form(graph);
        let key: CacheKey = (form.key(), k, nu);
        obs::counter!("cache.canon_ns").add(obs::trace::elapsed_ns().saturating_sub(t0));

        // Fast path: an entry we can trust (or prove trustworthy).
        if let Some(entry) = self.usable_entry(&key, tuple_limit) {
            if let Some(eq) = materialize(&entry, game, &form.inverse()) {
                obs::counter!("cache.hits").incr();
                obs::replay_counters(&entry.counters);
                return Ok(eq);
            }
            // Fall through: stale, hand-edited, or otherwise corrupt —
            // recompute and overwrite below.
        }

        obs::counter!("cache.misses").incr();
        // Materializing the canonical graph and game is cache
        // bookkeeping, not solve work: the caller already built (and
        // counted) its own graph and game for this instance. Suppress it
        // so a `--cache` run's `graph.build.*` totals match an uncached
        // run instead of double-counting one build per class replay.
        let canonical_graph = obs::suppressed(|| form.to_graph());
        let canonical_game = obs::suppressed(|| TupleGame::new(&canonical_graph, k, nu))?;
        let (solved, deltas) = obs::captured(|| {
            let supports = hint(&canonical_game);
            let hint_refs = supports
                .as_ref()
                .map(|(rows, cols)| (rows.as_slice(), cols.as_slice()));
            let eq = solve_exact_hinted(&canonical_game, tuple_limit, hint_refs)?;
            Ok::<CacheEntry, CoreError>(entry_of(&eq, &canonical_graph))
        });
        // Replay even when the solve errored, so partial work is
        // accounted identically on every run.
        obs::replay_counters(&deltas);
        let mut entry = solved?;
        entry.counters = deltas;
        self.guard().insert(key, entry.clone());
        self.dirty.store(true, Ordering::Release);
        materialize(&entry, game, &form.inverse()).ok_or_else(|| CoreError::TooLarge {
            what: "cache entry failed to relabel onto its own graph".to_owned(),
            limit: tuple_limit,
        })
    }

    /// Hit-only lookup for the serving hot path: returns the memoized
    /// equilibrium relabeled onto `game`'s graph when the class is
    /// cached, `None` otherwise. Never solves, never ticks
    /// `cache.misses`, and — unlike [`solve`](Self::solve) — **does not
    /// replay** the class's stored counter deltas into the live judged
    /// counters.
    ///
    /// Replay exists so a batch run's judged counters are invariant to
    /// cache warmth; a server's live counters instead stay warm-variant
    /// by design (a warm instance must show zero `lp.*` activity), and
    /// jobs/warmth-invariant judged counters are reconstructed offline
    /// from the served class set via [`replay_sums`](Self::replay_sums).
    ///
    /// `form` must be the canonical form of `game.graph()` — the caller
    /// computes it once and reuses it for the miss path.
    pub fn probe(
        &self,
        game: &TupleGame<'_>,
        form: &CanonicalForm,
        tuple_limit: usize,
    ) -> Option<ExactEquilibrium> {
        let key: CacheKey = (form.key(), game.k(), game.attacker_count());
        let entry = self.usable_entry(&key, tuple_limit)?;
        let eq = materialize(&entry, game, &form.inverse())?;
        obs::counter!("cache.hits").incr();
        Some(eq)
    }

    /// Sums the stored per-class counter deltas over `keys`, name-sorted.
    ///
    /// This is the offline half of the [`probe`](Self::probe) contract:
    /// given the set of classes a run *served* (each key counted once,
    /// however many times or from whichever cache state it was served),
    /// the result equals the judged counters of a cold batch run over
    /// one representative per class — invariant to warmth, jobs, and
    /// request ordering. Unknown keys contribute nothing.
    pub fn replay_sums<'a, I>(&self, keys: I) -> Vec<(String, u64)>
    where
        I: IntoIterator<Item = &'a CacheKey>,
    {
        let store = self.guard();
        let mut sums: BTreeMap<String, u64> = BTreeMap::new();
        for key in keys {
            if let Some(entry) = store.get(key) {
                for (name, delta) in &entry.counters {
                    *sums.entry(name.clone()).or_insert(0) += delta;
                }
            }
        }
        sums.into_iter().collect()
    }

    /// Looks up `key` and returns a clone of its entry if it is trusted
    /// or passes first-use verification (marking the stored entry
    /// verified so the proof runs once). The clone is taken with the
    /// store guard dropped before verification re-locks.
    fn usable_entry(&self, key: &CacheKey, tuple_limit: usize) -> Option<CacheEntry> {
        let mut entry = self.guard().get(key).cloned()?;
        if !entry.verified {
            if !obs::suppressed(|| verify_entry(&entry, key, tuple_limit)) {
                return None;
            }
            entry.verified = true;
            if let Some(stored) = self.guard().get_mut(key) {
                stored.verified = true;
            }
        }
        Some(entry)
    }

    fn guard(&self) -> std::sync::MutexGuard<'_, BTreeMap<CacheKey, CacheEntry>> {
        self.store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Extracts a canonical-label entry from a freshly solved equilibrium.
fn entry_of(eq: &ExactEquilibrium, canonical_graph: &Graph) -> CacheEntry {
    let attacker = eq
        .config
        .attacker(0)
        .iter()
        .map(|(v, p)| (v.index(), p))
        .collect();
    let defender = eq
        .config
        .defender()
        .iter()
        .map(|(t, p)| {
            let edges = t
                .edges()
                .iter()
                .map(|&e| {
                    let ends = canonical_graph.endpoints(e);
                    (ends.u().index(), ends.v().index())
                })
                .collect();
            (edges, p)
        })
        .collect();
    CacheEntry {
        value: eq.value,
        attacker,
        defender,
        counters: Vec::new(),
        verified: true,
    }
}

/// Relabels a canonical entry onto `game`'s graph through `inverse`
/// (canonical index → original index). `None` means the entry does not
/// fit the graph — corrupt or mismatched — and must be recomputed.
fn materialize(
    entry: &CacheEntry,
    game: &TupleGame<'_>,
    inverse: &[usize],
) -> Option<ExactEquilibrium> {
    let graph = game.graph();
    let original_vertex =
        |canon: usize| -> Option<VertexId> { inverse.get(canon).copied().map(VertexId::new) };

    let attacker_entries: Vec<(VertexId, Ratio)> = entry
        .attacker
        .iter()
        .map(|&(cv, p)| Some((original_vertex(cv)?, p)))
        .collect::<Option<_>>()?;
    let defender_entries: Vec<(Tuple, Ratio)> = entry
        .defender
        .iter()
        .map(|(canon_edges, p)| {
            let ids = canon_edges
                .iter()
                .map(|&(cu, cv)| graph.find_edge(original_vertex(cu)?, original_vertex(cv)?))
                .collect::<Option<Vec<_>>>()?;
            Some((Tuple::new(ids).ok()?, *p))
        })
        .collect::<Option<_>>()?;

    let attacker = MixedStrategy::from_entries(attacker_entries).ok()?;
    let defender = MixedStrategy::from_entries(defender_entries).ok()?;
    let config = MixedConfig::symmetric(game, attacker, defender).ok()?;
    let defender_gain = entry.value * Ratio::from(game.attacker_count());
    Some(ExactEquilibrium {
        value: entry.value,
        config,
        defender_gain,
    })
}

/// Re-proves a (disk-loaded, untrusted) entry on its canonical game:
/// the claimed configuration must be an exact Nash equilibrium and its
/// tuple-player payoff must match the claimed value. Runs suppressed at
/// every call site so it cannot perturb counters.
fn verify_entry(entry: &CacheEntry, key: &CacheKey, tuple_limit: usize) -> bool {
    let (graph6, k, nu) = key;
    let Ok(canonical_graph) = from_graph6(graph6) else {
        return false;
    };
    let Ok(canonical_game) = TupleGame::new(&canonical_graph, *k, *nu) else {
        return false;
    };
    let identity: Vec<usize> = (0..canonical_graph.vertex_count()).collect();
    let Some(eq) = materialize(entry, &canonical_game, &identity) else {
        return false;
    };
    let Ok(adapter) = GameAdapter::new(&canonical_game, tuple_limit) else {
        return false;
    };
    adapter.verify(&eq.config).is_equilibrium()
        && payoff::expected_ip_tuple_player(&canonical_game, &eq.config)
            == entry.value * Ratio::from(*nu)
}

// ---------------------------------------------------------------------------
// Sidecar format
// ---------------------------------------------------------------------------

fn render_sidecar(store: &BTreeMap<CacheKey, CacheEntry>) -> String {
    let mut entries = JsonArray::new();
    for ((graph6, k, nu), entry) in store {
        let mut attacker = JsonArray::new();
        for (v, p) in &entry.attacker {
            let mut item = JsonObject::new();
            item.field_u64("vertex", *v as u64);
            item.field_str("p", &p.to_string());
            attacker.push_raw(&item.finish());
        }
        let mut defender = JsonArray::new();
        for (edges, p) in &entry.defender {
            let mut pairs = JsonArray::new();
            for &(u, v) in edges {
                let mut pair = JsonArray::new();
                pair.push_u64(u as u64);
                pair.push_u64(v as u64);
                pairs.push_raw(&pair.finish());
            }
            let mut item = JsonObject::new();
            item.field_raw("edges", &pairs.finish());
            item.field_str("p", &p.to_string());
            defender.push_raw(&item.finish());
        }
        let mut counters = JsonArray::new();
        for (name, delta) in &entry.counters {
            let mut item = JsonObject::new();
            item.field_str("name", name);
            item.field_u64("delta", *delta);
            counters.push_raw(&item.finish());
        }
        let mut obj = JsonObject::new();
        obj.field_str("graph6", graph6);
        obj.field_u64("k", *k as u64);
        obj.field_u64("nu", *nu as u64);
        obj.field_str("value", &entry.value.to_string());
        obj.field_raw("attacker", &attacker.finish());
        obj.field_raw("defender", &defender.finish());
        obj.field_raw("counters", &counters.finish());
        entries.push_raw(&obj.finish());
    }
    let mut doc = JsonObject::new();
    doc.field_str("format", SIDECAR_FORMAT);
    doc.field_raw("entries", &entries.finish());
    let mut text = doc.finish();
    text.push('\n');
    text
}

fn parse_sidecar(text: &str) -> Result<BTreeMap<CacheKey, CacheEntry>, String> {
    let doc = json::parse(text)?;
    let format = doc
        .get("format")
        .and_then(JsonValue::as_str)
        .ok_or("missing format tag")?;
    if format != SIDECAR_FORMAT {
        return Err(format!(
            "unsupported cache format {format:?} (expected {SIDECAR_FORMAT:?})"
        ));
    }
    let entries = doc
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or("missing entries array")?;
    let mut store = BTreeMap::new();
    for (i, item) in entries.iter().enumerate() {
        let (key, entry) = parse_entry(item).map_err(|e| format!("entry {i}: {e}"))?;
        store.insert(key, entry);
    }
    Ok(store)
}

fn parse_entry(item: &JsonValue) -> Result<(CacheKey, CacheEntry), String> {
    let str_field = |name: &str| {
        item.get(name)
            .and_then(JsonValue::as_str)
            .ok_or(format!("missing string field {name:?}"))
    };
    let usize_field = |name: &str| {
        item.get(name)
            .and_then(JsonValue::as_u64)
            .map(|v| v as usize)
            .ok_or(format!("missing integer field {name:?}"))
    };
    let ratio =
        |s: &str| -> Result<Ratio, String> { s.parse::<Ratio>().map_err(|e| e.to_string()) };

    let graph6 = str_field("graph6")?.to_owned();
    let k = usize_field("k")?;
    let nu = usize_field("nu")?;
    let value = ratio(str_field("value")?)?;

    let mut attacker = Vec::new();
    for a in item
        .get("attacker")
        .and_then(JsonValue::as_array)
        .ok_or("missing attacker array")?
    {
        let v = a
            .get("vertex")
            .and_then(JsonValue::as_u64)
            .ok_or("attacker item missing vertex")? as usize;
        let p = ratio(
            a.get("p")
                .and_then(JsonValue::as_str)
                .ok_or("attacker item missing p")?,
        )?;
        attacker.push((v, p));
    }

    let mut defender = Vec::new();
    for d in item
        .get("defender")
        .and_then(JsonValue::as_array)
        .ok_or("missing defender array")?
    {
        let mut edges = Vec::new();
        for pair in d
            .get("edges")
            .and_then(JsonValue::as_array)
            .ok_or("defender item missing edges")?
        {
            let ends = pair.as_array().ok_or("edge is not a pair")?;
            // lint: allow(index) let-else slice pattern; a mismatch takes the else branch
            let [u, v] = ends else {
                return Err("edge is not a pair".to_owned());
            };
            edges.push((
                u.as_u64().ok_or("edge endpoint is not an integer")? as usize,
                v.as_u64().ok_or("edge endpoint is not an integer")? as usize,
            ));
        }
        let p = ratio(
            d.get("p")
                .and_then(JsonValue::as_str)
                .ok_or("defender item missing p")?,
        )?;
        defender.push((edges, p));
    }

    let mut counters = Vec::new();
    for c in item
        .get("counters")
        .and_then(JsonValue::as_array)
        .ok_or("missing counters array")?
    {
        counters.push((
            c.get("name")
                .and_then(JsonValue::as_str)
                .ok_or("counter item missing name")?
                .to_owned(),
            c.get("delta")
                .and_then(JsonValue::as_u64)
                .ok_or("counter item missing delta")?,
        ));
    }

    Ok((
        (graph6, k, nu),
        CacheEntry {
            value,
            attacker,
            defender,
            counters,
            // Disk contents are untrusted until re-proved in-process.
            verified: false,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_core::solve::solve_exact;
    use defender_graph::generators;
    use defender_num::rng::{Rng, StdRng};
    use defender_obs::snapshot;

    const LIMIT: usize = 100_000;

    fn shuffled(graph: &Graph, rng: &mut StdRng) -> Graph {
        let n = graph.vertex_count();
        let mut perm: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut perm);
        let mut edges: Vec<(usize, usize)> = graph
            .edges()
            .map(|e| {
                let ends = graph.endpoints(e);
                (perm[ends.u().index()], perm[ends.v().index()])
            })
            .collect();
        rng.shuffle(&mut edges);
        let mut b = defender_graph::GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn hit_reproduces_the_cold_answer_on_the_same_graph() {
        let cache = EquilibriumCache::in_memory();
        for (graph, k, nu) in [
            (generators::cycle(5), 1usize, 1usize),
            (generators::petersen(), 1, 2),
            (generators::complete(4), 2, 1),
        ] {
            let game = TupleGame::new(&graph, k, nu).unwrap();
            let cold = solve_exact(&game, LIMIT).unwrap();
            let miss = cache.solve(&game, LIMIT).unwrap();
            let hit = cache.solve(&game, LIMIT).unwrap();
            for eq in [&miss, &hit] {
                assert_eq!(eq.value, cold.value, "{graph:?} k={k} nu={nu}");
                assert_eq!(eq.defender_gain, cold.defender_gain);
                // The exact verifier certifies the cached equilibrium.
                let adapter = GameAdapter::new(&game, LIMIT).unwrap();
                assert!(adapter.verify(&eq.config).is_equilibrium());
            }
        }
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn isomorphic_instances_share_one_entry_and_stay_correct() {
        let mut rng = StdRng::seed_from_u64(0xCAC4E);
        let cache = EquilibriumCache::in_memory();
        let base = generators::wheel(5);
        let mut values = Vec::new();
        for _ in 0..6 {
            let copy = shuffled(&base, &mut rng);
            let game = TupleGame::new(&copy, 1, 1).unwrap();
            let eq = cache.solve(&game, LIMIT).unwrap();
            let adapter = GameAdapter::new(&game, LIMIT).unwrap();
            assert!(
                adapter.verify(&eq.config).is_equilibrium(),
                "relabeled equilibrium must verify on the relabeled graph"
            );
            values.push(eq.value);
        }
        assert_eq!(cache.len(), 1, "all copies collapse to one class");
        assert!(values.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn replayed_counters_make_hits_and_misses_indistinguishable() {
        obs::enable();
        let graph = generators::cycle(5);
        let game = TupleGame::new(&graph, 1, 1).unwrap();

        let solve_once = || {
            let cache = EquilibriumCache::in_memory();
            cache.solve(&game, LIMIT).unwrap();
        };
        let solve_twice = || {
            let cache = EquilibriumCache::in_memory();
            cache.solve(&game, LIMIT).unwrap();
            cache.solve(&game, LIMIT).unwrap();
        };

        let jobs_counters = |f: &dyn Fn()| -> Vec<(String, u64)> {
            let before = snapshot();
            f();
            let after = snapshot();
            after
                .counters
                .into_iter()
                .filter(|(name, _)| !name.starts_with("cache."))
                .map(|(name, v)| {
                    let prior = before.counter(&name).unwrap_or(0);
                    (name, v - prior)
                })
                .filter(|(_, v)| *v > 0)
                .collect()
        };

        let one = jobs_counters(&solve_once);
        let two = jobs_counters(&solve_twice);
        let doubled: Vec<(String, u64)> = one.iter().map(|(n, v)| (n.clone(), v * 2)).collect();
        assert_eq!(
            two, doubled,
            "a hit must replay exactly the class deltas of a miss"
        );
        assert!(!one.is_empty(), "the solve must tick something to replay");
    }

    #[test]
    fn cached_runs_tick_the_same_judged_counters_as_uncached_runs() {
        obs::enable();
        // Built from its own canonical form so both paths solve the
        // identical labeling; each closure builds its own game the way
        // an experiment instance loop does, so the judged window covers
        // construction + solve. Cache bookkeeping (key computation, the
        // canonical graph/game copies) must tick nothing on top —
        // `--cache` must not perturb a run's judged counters.
        let base = canonical_form(&generators::wheel(5)).to_graph();
        let uncached = || {
            let game = TupleGame::new(&base, 1, 1).unwrap();
            solve_exact(&game, LIMIT).unwrap();
        };
        let cached = || {
            let cache = EquilibriumCache::in_memory();
            let game = TupleGame::new(&base, 1, 1).unwrap();
            cache.solve(&game, LIMIT).unwrap();
        };
        let judged = |f: &dyn Fn()| -> Vec<(String, u64)> {
            let before = snapshot();
            f();
            snapshot()
                .counters
                .into_iter()
                .filter(|(name, _)| !name.starts_with("cache."))
                .map(|(name, v)| {
                    let prior = before.counter(&name).unwrap_or(0);
                    (name, v - prior)
                })
                .filter(|(_, v)| *v > 0)
                .collect()
        };
        assert_eq!(
            judged(&uncached),
            judged(&cached),
            "cache bookkeeping must not tick judged counters"
        );
    }

    #[test]
    fn sidecar_round_trips_bit_exactly() {
        let dir = std::env::temp_dir().join(format!("defender-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let cache = EquilibriumCache::open(&dir).unwrap();
        for (graph, k) in [
            (generators::cycle(5), 1usize),
            (generators::petersen(), 1),
            (generators::complete_bipartite(2, 3), 2),
        ] {
            let game = TupleGame::new(&graph, k, 1).unwrap();
            cache.solve(&game, LIMIT).unwrap();
        }
        cache.persist().unwrap();
        let first = fs::read_to_string(dir.join(SIDECAR_FILE)).unwrap();

        // Reload: every Ratio, label, and counter delta must survive the
        // text round trip unchanged, so re-persisting is byte-identical.
        let reloaded = EquilibriumCache::open(&dir).unwrap();
        assert_eq!(reloaded.len(), 3);
        assert_eq!(
            *cache.guard(),
            reloaded
                .guard()
                .iter()
                .map(|(key, entry)| {
                    let mut trusted = entry.clone();
                    trusted.verified = true;
                    (key.clone(), trusted)
                })
                .collect::<BTreeMap<_, _>>(),
            "loaded entries differ only in the verified flag"
        );
        reloaded.persist().unwrap();
        let second = fs::read_to_string(dir.join(SIDECAR_FILE)).unwrap();
        assert_eq!(first, second);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_entries_verify_once_then_serve_hits() {
        // Regression: the verify-on-first-use path re-locks the store; a
        // guard held across the `if let` body deadlocked here once.
        let dir =
            std::env::temp_dir().join(format!("defender-cache-verify-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let graph = generators::cycle(5);
        let game = TupleGame::new(&graph, 1, 1).unwrap();
        {
            let cache = EquilibriumCache::open(&dir).unwrap();
            cache.solve(&game, LIMIT).unwrap();
            cache.persist().unwrap();
        }
        let reloaded = EquilibriumCache::open(&dir).unwrap();
        let eq = reloaded.solve(&game, LIMIT).unwrap();
        assert_eq!(eq.value, Ratio::new(2, 5));
        assert!(
            reloaded.guard().values().all(|e| e.verified),
            "first use marks the loaded entry verified"
        );
        let again = reloaded.solve(&game, LIMIT).unwrap();
        assert_eq!(again.value, eq.value);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_are_recomputed_not_served() {
        let dir =
            std::env::temp_dir().join(format!("defender-cache-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let graph = generators::cycle(5);
        let game = TupleGame::new(&graph, 1, 1).unwrap();
        let truth = {
            let cache = EquilibriumCache::open(&dir).unwrap();
            let eq = cache.solve(&game, LIMIT).unwrap();
            cache.persist().unwrap();
            eq
        };

        // Hand-edit the sidecar: claim a wrong value. C5's value is 2/5;
        // a tampered 1/2 must fail payoff re-verification.
        let text = fs::read_to_string(dir.join(SIDECAR_FILE)).unwrap();
        assert!(text.contains("\"value\": \"2/5\""));
        fs::write(
            dir.join(SIDECAR_FILE),
            text.replace("\"value\": \"2/5\"", "\"value\": \"1/2\""),
        )
        .unwrap();

        let tampered = EquilibriumCache::open(&dir).unwrap();
        let eq = tampered.solve(&game, LIMIT).unwrap();
        assert_eq!(eq.value, truth.value, "tampered entry must be recomputed");
        assert_eq!(eq.value, Ratio::new(2, 5));

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_sidecars_are_rejected_at_open() {
        let dir =
            std::env::temp_dir().join(format!("defender-cache-malformed-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(SIDECAR_FILE),
            "{\"format\": \"bogus/v9\", \"entries\": []}",
        )
        .unwrap();
        let err = EquilibriumCache::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_flush_writes_the_same_bytes_as_per_store_persist() {
        let base =
            std::env::temp_dir().join(format!("defender-cache-flush-{}", std::process::id()));
        let eager_dir = base.join("eager");
        let batched_dir = base.join("batched");
        let _ = fs::remove_dir_all(&base);

        let instances = [
            (generators::cycle(5), 1usize),
            (generators::petersen(), 1),
            (generators::complete_bipartite(2, 3), 2),
        ];

        // Eager discipline: rewrite the sidecar after every store.
        let eager = EquilibriumCache::open(&eager_dir).unwrap();
        for (graph, k) in &instances {
            let game = TupleGame::new(graph, *k, 1).unwrap();
            eager.solve(&game, LIMIT).unwrap();
            eager.persist().unwrap();
        }

        // Batched discipline: flush once at "shutdown".
        let batched = EquilibriumCache::open(&batched_dir).unwrap();
        assert!(!batched.is_dirty());
        assert!(!batched.flush_if_dirty().unwrap(), "clean store: no write");
        for (graph, k) in &instances {
            let game = TupleGame::new(graph, *k, 1).unwrap();
            batched.solve(&game, LIMIT).unwrap();
        }
        assert!(batched.is_dirty());
        assert!(batched.flush_if_dirty().unwrap());
        assert!(!batched.is_dirty(), "flush clears the dirty flag");
        assert!(
            !batched.flush_if_dirty().unwrap(),
            "second flush with no new stores is a no-op"
        );

        assert_eq!(
            fs::read_to_string(eager_dir.join(SIDECAR_FILE)).unwrap(),
            fs::read_to_string(batched_dir.join(SIDECAR_FILE)).unwrap(),
            "batched flush must be byte-identical to per-store persistence"
        );

        // Hits never dirty the store.
        let game = TupleGame::new(&instances[0].0, 1, 1).unwrap();
        batched.solve(&game, LIMIT).unwrap();
        assert!(!batched.is_dirty(), "a pure hit must not mark dirty");

        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn probe_hits_without_replaying_and_misses_without_ticking() {
        obs::enable();
        let graph = generators::cycle(5);
        let game = TupleGame::new(&graph, 1, 1).unwrap();
        let form = canonical_form(&graph);
        let cache = EquilibriumCache::in_memory();

        // Cold probe: a miss is silent — no cache.misses tick, no solve.
        let before = snapshot();
        assert!(cache.probe(&game, &form, LIMIT).is_none());
        let after = snapshot();
        assert_eq!(
            after.counter("cache.misses").unwrap_or(0),
            before.counter("cache.misses").unwrap_or(0),
            "probe misses must not tick cache.misses"
        );

        let solved = cache.solve(&game, LIMIT).unwrap();

        // Warm probe: serves the memo, ticks cache.hits, and replays
        // nothing — judged counters (lp.*, solve.*) must stay flat.
        let before = snapshot();
        let probed = cache.probe(&game, &form, LIMIT).unwrap();
        let after = snapshot();
        assert_eq!(probed.value, solved.value);
        assert_eq!(probed.defender_gain, solved.defender_gain);
        let adapter = GameAdapter::new(&game, LIMIT).unwrap();
        assert!(adapter.verify(&probed.config).is_equilibrium());
        assert_eq!(
            after.counter("cache.hits").unwrap_or(0),
            before.counter("cache.hits").unwrap_or(0) + 1
        );
        for (name, v) in &after.counters {
            if name.starts_with("cache.") {
                continue;
            }
            assert_eq!(
                Some(*v),
                before.counter(name),
                "probe hit replayed judged counter {name}"
            );
        }
    }

    #[test]
    fn replay_sums_reconstruct_judged_counters_per_served_class() {
        let cache = EquilibriumCache::in_memory();
        let c5 = generators::cycle(5);
        let pet = generators::petersen();
        let g1 = TupleGame::new(&c5, 1, 1).unwrap();
        let g2 = TupleGame::new(&pet, 1, 1).unwrap();
        cache.solve(&g1, LIMIT).unwrap();
        cache.solve(&g2, LIMIT).unwrap();

        let k1: CacheKey = (canonical_form(&c5).key(), 1, 1);
        let k2: CacheKey = (canonical_form(&pet).key(), 1, 1);

        let one = cache.replay_sums([&k1]);
        let both = cache.replay_sums([&k1, &k2]);
        assert!(!one.is_empty(), "a solved class stores counter deltas");
        assert!(one.windows(2).all(|w| w[0].0 < w[1].0), "name-sorted");

        // Σ over both classes = per-class sums merged.
        let mut expect: BTreeMap<String, u64> = one.iter().cloned().collect();
        for (name, v) in cache.replay_sums([&k2]) {
            *expect.entry(name).or_insert(0) += v;
        }
        assert_eq!(both, expect.into_iter().collect::<Vec<_>>());

        // Unknown keys contribute nothing; key set, not multiplicity.
        let missing: CacheKey = ("~~~bogus".to_owned(), 3, 2);
        assert!(cache.replay_sums([&missing]).is_empty());
        assert_eq!(cache.replay_sums([&k1]), cache.replay_sums([&k1, &missing]));
    }

    #[test]
    fn hints_flow_through_to_the_canonical_solve() {
        let cache = EquilibriumCache::in_memory();
        let graph = generators::cycle(5);
        let game = TupleGame::new(&graph, 1, 1).unwrap();
        let asked = std::cell::Cell::new(false);
        let eq = cache
            .solve_with_hint(&game, LIMIT, |canonical_game| {
                asked.set(true);
                assert_eq!(canonical_game.graph().vertex_count(), 5);
                None
            })
            .unwrap();
        assert!(asked.get());
        assert_eq!(eq.value, Ratio::new(2, 5));
    }
}
