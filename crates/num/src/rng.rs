//! A tiny, dependency-free deterministic PRNG (xorshift64* seeded through
//! splitmix64).
//!
//! The workspace must build with **no network access**, so it cannot pull
//! the `rand` crate; everything random in this repository — seeded graph
//! families, Monte-Carlo simulation, randomized tests — only needs a fast,
//! reproducible 64-bit generator, which this module vendors in ~100 lines.
//! It is **not** cryptographically secure and must never be used for
//! security decisions; it exists to make experiments and property tests
//! deterministic per seed across platforms.
//!
//! # Examples
//!
//! ```
//! use defender_num::rng::{Rng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let die = rng.gen_range(1..7);
//! assert!((1..7).contains(&die));
//! let p = rng.gen_f64();
//! assert!((0.0..1.0).contains(&p));
//! ```

use core::ops::Range;

/// A source of uniform pseudo-random 64-bit words, with derived helpers.
///
/// Mirrors the tiny slice of the `rand` crate API this workspace used:
/// [`gen_range`](Rng::gen_range), [`gen_bool`](Rng::gen_bool),
/// [`gen_f64`](Rng::gen_f64), [`shuffle`](Rng::shuffle) and
/// [`choose`](Rng::choose) are all default methods over
/// [`next_u64`](Rng::next_u64), so generic code can stay written against
/// `R: Rng + ?Sized`.
pub trait Rng {
    /// The next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53-bit granularity.
    fn gen_f64(&mut self) -> f64 {
        // Top 53 bits scaled into the unit interval.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform `usize` in `[range.start, range.end)`.
    ///
    /// The tiny modulo bias (< 2⁻⁴⁰ for any span this workspace draws) is
    /// irrelevant for seeded experiments and randomized tests.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range needs a non-empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }

    /// Fisher–Yates shuffle of `slice` in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` when empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The workspace's standard generator: xorshift64* over a splitmix64-mixed
/// seed (so nearby seeds diverge immediately and seed 0 is legal).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XorShiftRng {
    state: u64,
}

/// Alias matching the name the workspace historically imported from `rand`.
pub type StdRng = XorShiftRng;

impl XorShiftRng {
    /// Builds a generator from a 64-bit seed; every seed (including 0) is
    /// valid and yields an independent-looking stream.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> XorShiftRng {
        // splitmix64 finalizer: guarantees a non-zero, well-mixed state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShiftRng {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }
}

impl Rng for XorShiftRng {
    fn next_u64(&mut self) -> u64 {
        // xorshift64*: period 2⁶⁴ − 1, passes SmallCrush — ample here.
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_ne!(rng.next_u64(), 0, "state must never be the fixed point");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(5..15);
            assert!((5..15).contains(&v));
            seen[v - 5] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws cover all 10 values");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.gen_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 1/2");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits} hits at p = 0.3");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "overwhelmingly unlikely to be identity");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(rng.choose::<u8>(&[]), None);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(9);
        let _ = draw(&mut rng);
        let by_ref = &mut rng;
        let _ = draw(by_ref);
    }
}
