//! Deferred-reduction kernels for hot rational arithmetic.
//!
//! Every [`Ratio`](crate::Ratio) operation normally pays one gcd to keep
//! the result reduced. Long reductions (dot products, expected-payoff
//! sums, Gauss–Jordan row updates) do not need the intermediates reduced —
//! only the final value. [`RatioAccum`] keeps an *unreduced* `i128`
//! fraction and reduces exactly once in [`RatioAccum::finish`]; the slice
//! kernels [`row_eliminate`] and [`row_scale_div`] fuse the two gcds of a
//! `value -= factor * pivot` update into one, with a den-1 / zero-term
//! fast path that skips gcd entirely.
//!
//! The contract is *bit-identical results*: every kernel computes the same
//! exact rational the naive per-op sequence would (both reduce to the
//! canonical form, so equality is automatic), and overflow behavior is no
//! stricter — the accumulator renormalizes on `i128` pressure, giving it
//! more headroom than the naive `i64`-per-step path, and panics only where
//! the naive path would already be at the edge of panicking.
//!
//! Two counters quantify the win (flushed in batch, once per kernel call,
//! so parallel loops do not contend on the atomics):
//!
//! - `num.gcd_skipped` — element operations completed without running any
//!   gcd (deferred merge, zero term, or integer fast path);
//! - `num.accum_reductions` — gcd reductions the kernels actually paid
//!   (finishes, overflow renormalizations, and fused single-gcd updates).

use crate::ratio::make;
use crate::{gcd, Ratio};

/// Flush batched tallies to the global counter registry.
fn flush(gcd_skipped: u64, reductions: u64) {
    if gcd_skipped > 0 {
        defender_obs::counter!("num.gcd_skipped").add(gcd_skipped);
    }
    if reductions > 0 {
        defender_obs::counter!("num.accum_reductions").add(reductions);
    }
}

/// An unreduced rational accumulator: gcd-reduces once per reduction
/// instead of once per operation.
///
/// # Examples
///
/// ```
/// use defender_num::{Ratio, RatioAccum};
///
/// let mut acc = RatioAccum::new();
/// acc.add(Ratio::new(1, 3));
/// acc.add_mul(Ratio::new(1, 2), Ratio::new(1, 3));
/// assert_eq!(acc.finish(), Ratio::new(1, 2));
/// ```
#[derive(Debug)]
pub struct RatioAccum {
    num: i128,
    den: i128,
    gcd_skipped: u64,
    reductions: u64,
}

impl Default for RatioAccum {
    fn default() -> RatioAccum {
        RatioAccum::new()
    }
}

impl RatioAccum {
    /// A fresh accumulator holding zero.
    #[must_use]
    pub fn new() -> RatioAccum {
        RatioAccum {
            num: 0,
            den: 1,
            gcd_skipped: 0,
            reductions: 0,
        }
    }

    /// Reduce the running fraction in place. Returns `false` when it was
    /// already reduced (no more headroom to win back).
    fn renormalize(&mut self) -> bool {
        self.reductions += 1;
        let g = gcd(self.num.unsigned_abs(), self.den.unsigned_abs());
        if g <= 1 {
            return false;
        }
        // lint: allow(panic) g <= min(|num|,|den|) <= 2^127 only when both are i128::MIN, which den > 0 excludes
        let g = i128::try_from(g).expect("gcd of i128 magnitudes fits i128");
        self.num /= g; // lint: allow(arith) g = gcd with nonzero den, so g >= 1
        self.den /= g; // lint: allow(arith) g = gcd with nonzero den, so g >= 1
        true
    }

    /// Merge the unreduced term `tn/td` (with `td > 0`) into the running
    /// fraction without reducing, renormalizing on overflow.
    fn merge(&mut self, tn: i128, td: i128) {
        if tn == 0 {
            self.gcd_skipped += 1;
            return;
        }
        loop {
            if td == self.den {
                if let Some(n) = self.num.checked_add(tn) {
                    self.num = n;
                    self.gcd_skipped += 1;
                    return;
                }
            } else if let (Some(a), Some(b), Some(d)) = (
                self.num.checked_mul(td),
                tn.checked_mul(self.den),
                self.den.checked_mul(td),
            ) {
                if let Some(n) = a.checked_add(b) {
                    self.num = n;
                    self.den = d;
                    self.gcd_skipped += 1;
                    return;
                }
            }
            assert!(
                self.renormalize(),
                "RatioAccum overflow: accumulated value exceeds i128 even when reduced"
            );
        }
    }

    /// Adds `r` to the accumulator (no gcd).
    pub fn add(&mut self, r: Ratio) {
        self.merge(i128::from(r.numer()), i128::from(r.denom()));
    }

    /// Adds the product `a * b` to the accumulator (no gcd: the product is
    /// merged unreduced — `i64` components cannot overflow an `i128`
    /// multiply).
    pub fn add_mul(&mut self, a: Ratio, b: Ratio) {
        let tn = i128::from(a.numer()) * i128::from(b.numer());
        let td = i128::from(a.denom()) * i128::from(b.denom());
        self.merge(tn, td);
    }

    /// Subtracts `r` from the accumulator (no gcd).
    pub fn sub(&mut self, r: Ratio) {
        self.merge(i128::from(-r.numer()), i128::from(r.denom()));
    }

    /// Reduces once and returns the exact total, flushing the batched
    /// `num.*` counters.
    ///
    /// # Panics
    ///
    /// Panics if the reduced total does not fit in `i64` components — the
    /// same condition under which the naive per-op path panics.
    #[must_use]
    pub fn finish(mut self) -> Ratio {
        self.reductions += 1;
        // lint: allow(panic) documented # Panics overflow contract, same as the per-op Ratio path
        let out = make(self.num, self.den).expect("RatioAccum total fits in 64-bit components");
        flush(self.gcd_skipped, self.reductions);
        out
    }
}

impl Ratio {
    /// Exact dot product `Σ xs[i] · ys[i]` with one gcd at the end.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or the total overflows.
    ///
    /// # Examples
    ///
    /// ```
    /// use defender_num::Ratio;
    ///
    /// let xs = [Ratio::new(1, 2), Ratio::new(1, 3)];
    /// let ys = [Ratio::new(1, 3), Ratio::new(1, 2)];
    /// assert_eq!(Ratio::dot(&xs, &ys), Ratio::new(1, 3));
    /// ```
    #[must_use]
    pub fn dot(xs: &[Ratio], ys: &[Ratio]) -> Ratio {
        assert_eq!(xs.len(), ys.len(), "dot product length mismatch");
        let mut acc = RatioAccum::new();
        for (&x, &y) in xs.iter().zip(ys) {
            acc.add_mul(x, y);
        }
        acc.finish()
    }

    /// Exact dot product over an iterator of `(x, y)` pairs with one gcd
    /// at the end.
    #[must_use]
    pub fn dot_iter(pairs: impl IntoIterator<Item = (Ratio, Ratio)>) -> Ratio {
        let mut acc = RatioAccum::new();
        for (x, y) in pairs {
            acc.add_mul(x, y);
        }
        acc.finish()
    }

    /// Exact sum with one gcd at the end (a deferred-reduction alternative
    /// to the per-op `Sum` impl).
    #[must_use]
    pub fn sum_iter(iter: impl IntoIterator<Item = Ratio>) -> Ratio {
        let mut acc = RatioAccum::new();
        for r in iter {
            acc.add(r);
        }
        acc.finish()
    }
}

/// Gauss–Jordan row update `row[j] -= factor * pivot[j]`, fusing the two
/// gcds of the naive multiply-then-subtract into one per element (zero per
/// element on the zero-term and all-integer fast paths).
///
/// Bit-identical to the naive loop: both produce the canonical reduced
/// value of the same exact rational.
///
/// # Panics
///
/// Panics if the slices differ in length or an element update overflows
/// `i64` components (as the naive path would).
pub fn row_eliminate(row: &mut [Ratio], factor: Ratio, pivot: &[Ratio]) {
    assert_eq!(row.len(), pivot.len(), "row elimination length mismatch");
    let (fn_, fd) = (i128::from(factor.numer()), i128::from(factor.denom()));
    let mut gcd_skipped = 0u64;
    let mut reductions = 0u64;
    for (value, &pv) in row.iter_mut().zip(pivot) {
        let tn = fn_ * i128::from(pv.numer());
        if tn == 0 {
            gcd_skipped += 1;
            continue;
        }
        let td = fd * i128::from(pv.denom());
        let (vn, vd) = (i128::from(value.numer()), i128::from(value.denom()));
        if vd == 1 && td == 1 {
            // Integer fast path: no gcd at all.
            if let Some(n) = vn.checked_sub(tn) {
                if let Ok(n64) = i64::try_from(n) {
                    *value = Ratio::from_integer(n64);
                    gcd_skipped += 1;
                    continue;
                }
            }
        }
        // Fused general path: one gcd instead of two. `vn·td`, `tn·vd` and
        // `vd·td` all fit in i128 for i64 components.
        // lint: allow(panic) documented # Panics overflow contract, same as the per-op Ratio path
        *value = make(vn * td - tn * vd, vd * td).expect("row update fits in 64-bit components");
        reductions += 1;
    }
    flush(gcd_skipped, reductions);
}

/// Row normalization `row[j] /= pivot`, with zero-term and unit-pivot fast
/// paths and batched counters.
///
/// # Panics
///
/// Panics if `pivot` is zero or an element overflows.
pub fn row_scale_div(row: &mut [Ratio], pivot: Ratio) {
    assert!(!pivot.is_zero(), "row normalization by zero pivot");
    if pivot == Ratio::ONE {
        // lint: allow(cast) row length fits u64; usize to u64 lossless on 64-bit
        flush(row.len() as u64, 0);
        return;
    }
    let (pn, pd) = (i128::from(pivot.numer()), i128::from(pivot.denom()));
    let mut gcd_skipped = 0u64;
    let mut reductions = 0u64;
    for value in row.iter_mut() {
        if value.is_zero() {
            gcd_skipped += 1;
            continue;
        }
        let (vn, vd) = (i128::from(value.numer()), i128::from(value.denom()));
        // lint: allow(panic) documented # Panics overflow contract, same as the per-op Ratio path
        *value = make(vn * pd, vd * pn).expect("row normalization fits in 64-bit components");
        reductions += 1;
    }
    flush(gcd_skipped, reductions);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Ratio {
        Ratio::new(n, d)
    }

    #[test]
    fn accum_matches_naive_sum() {
        let parts: Vec<Ratio> = (1..=9).map(|i| r(1, i)).collect();
        let naive: Ratio = parts.iter().sum();
        let mut acc = RatioAccum::new();
        for &p in &parts {
            acc.add(p);
        }
        assert_eq!(acc.finish(), naive);
        assert_eq!(Ratio::sum_iter(parts.iter().copied()), naive);
    }

    #[test]
    fn accum_add_mul_and_sub() {
        let mut acc = RatioAccum::new();
        acc.add_mul(r(2, 3), r(3, 4));
        acc.sub(r(1, 4));
        assert_eq!(acc.finish(), r(1, 4));
    }

    #[test]
    fn dot_matches_naive() {
        let xs = [r(1, 2), r(-2, 3), r(5, 1), Ratio::ZERO];
        let ys = [r(4, 7), r(3, 5), r(1, 10), r(9, 2)];
        let naive: Ratio = xs.iter().zip(&ys).map(|(&x, &y)| x * y).sum();
        assert_eq!(Ratio::dot(&xs, &ys), naive);
        assert_eq!(Ratio::dot_iter(xs.iter().copied().zip(ys)), naive);
    }

    #[test]
    fn accum_renormalizes_instead_of_overflowing() {
        // Repeatedly adding 1/3 keeps the unreduced denominator growing as
        // powers of three only until the i128 limit, where renormalization
        // must collapse it back; the exact total survives.
        let mut acc = RatioAccum::new();
        let third = r(1, 3);
        for _ in 0..200 {
            acc.add(third);
        }
        assert_eq!(acc.finish(), r(200, 3));
    }

    #[test]
    fn accum_handles_big_magnitudes_like_naive() {
        let big = Ratio::from(i64::MAX / 4);
        let mut acc = RatioAccum::new();
        acc.add(big);
        acc.add(big);
        assert_eq!(acc.finish(), big + big);
    }

    #[test]
    fn row_eliminate_matches_naive() {
        let pivot = [r(1, 1), r(2, 3), Ratio::ZERO, r(-7, 5), r(4, 1)];
        let factor = r(-3, 2);
        let original = [r(5, 1), r(1, 3), r(2, 7), Ratio::ZERO, r(9, 4)];
        let mut kernel = original;
        row_eliminate(&mut kernel, factor, &pivot);
        let naive: Vec<Ratio> = original
            .iter()
            .zip(&pivot)
            .map(|(&v, &p)| v - factor * p)
            .collect();
        assert_eq!(kernel.to_vec(), naive);
    }

    #[test]
    fn row_scale_div_matches_naive() {
        let original = [r(6, 1), Ratio::ZERO, r(-3, 4), r(1, 9)];
        for pivot in [r(3, 2), Ratio::ONE, r(-2, 1)] {
            let mut kernel = original;
            row_scale_div(&mut kernel, pivot);
            let naive: Vec<Ratio> = original.iter().map(|&v| v / pivot).collect();
            assert_eq!(kernel.to_vec(), naive, "pivot {pivot}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_checks_lengths() {
        let _ = Ratio::dot(&[Ratio::ONE], &[]);
    }

    #[test]
    #[should_panic(expected = "zero pivot")]
    fn scale_div_rejects_zero_pivot() {
        row_scale_div(&mut [Ratio::ONE], Ratio::ZERO);
    }
}
