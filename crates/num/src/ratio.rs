//! The [`Ratio`] type: a reduced `i64/i64` fraction with `i128` internals.

use core::cmp::Ordering;
use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use core::str::FromStr;

use crate::gcd;

/// An exact rational number.
///
/// Invariants (maintained by every constructor and operation):
///
/// - the denominator is strictly positive;
/// - numerator and denominator are coprime;
/// - zero is represented canonically as `0/1`.
///
/// All arithmetic is performed with `i128` intermediates, so products of two
/// in-range components never overflow; the *result* is converted back to
/// `i64` components and the operation panics if the reduced result does not
/// fit (see the checked variants such as [`Ratio::checked_add`] for
/// non-panicking alternatives). Equilibrium quantities in this workspace
/// have denominators bounded by small polynomials of the graph size, so the
/// panicking operators are the ergonomic default.
///
/// # Examples
///
/// ```
/// use defender_num::Ratio;
///
/// let p = Ratio::new(2, 4);
/// assert_eq!(p.numer(), 1);
/// assert_eq!(p.denom(), 2);
/// assert_eq!(p * Ratio::from(3), Ratio::new(3, 2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i64,
    den: i64,
}

/// Error produced by checked [`Ratio`] constructors and operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RatioError {
    /// A denominator of zero was supplied.
    ZeroDenominator,
    /// The reduced result does not fit in `i64` components.
    Overflow,
    /// Division by a zero-valued rational.
    DivisionByZero,
}

impl fmt::Display for RatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatioError::ZeroDenominator => write!(f, "denominator is zero"),
            RatioError::Overflow => write!(f, "reduced rational does not fit in 64-bit components"),
            RatioError::DivisionByZero => write!(f, "division by zero rational"),
        }
    }
}

impl std::error::Error for RatioError {}

/// Reduce an `i128` fraction and convert it to `Ratio`, reporting overflow.
pub(crate) fn make(num: i128, den: i128) -> Result<Ratio, RatioError> {
    if den == 0 {
        return Err(RatioError::ZeroDenominator);
    }
    let sign = if (num < 0) ^ (den < 0) { -1i128 } else { 1i128 };
    let num_abs = num.unsigned_abs();
    let den_abs = den.unsigned_abs();
    if num_abs == 0 {
        return Ok(Ratio { num: 0, den: 1 });
    }
    let g = gcd(num_abs, den_abs);
    // lint: allow(arith) g = gcd with num_abs != 0 (early return above), so g >= 1
    let num_red = num_abs / g;
    // lint: allow(arith) g = gcd with num_abs != 0 (early return above), so g >= 1
    let den_red = den_abs / g;
    let num_i = i128::try_from(num_red).map_err(|_| RatioError::Overflow)? * sign;
    let num64 = i64::try_from(num_i).map_err(|_| RatioError::Overflow)?;
    let den64 = i64::try_from(den_red).map_err(|_| RatioError::Overflow)?;
    Ok(Ratio {
        num: num64,
        den: den64,
    })
}

impl Ratio {
    /// The rational number zero (`0/1`).
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational number one (`1/1`).
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates the reduced rational `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use defender_num::Ratio;
    /// assert_eq!(Ratio::new(-4, -6), Ratio::new(2, 3));
    /// ```
    #[must_use]
    pub fn new(num: i64, den: i64) -> Ratio {
        // lint: allow(panic) documented contract; checked_new is the fallible form
        Ratio::checked_new(num, den).expect("Ratio::new: denominator must be non-zero")
    }

    /// Creates the reduced rational `num/den`, or an error if `den == 0`.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::ZeroDenominator`] when `den == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use defender_num::{Ratio, RatioError};
    /// assert_eq!(Ratio::checked_new(1, 0), Err(RatioError::ZeroDenominator));
    /// ```
    pub fn checked_new(num: i64, den: i64) -> Result<Ratio, RatioError> {
        make(i128::from(num), i128::from(den))
    }

    /// Creates a rational from an integer.
    ///
    /// # Examples
    ///
    /// ```
    /// use defender_num::Ratio;
    /// assert_eq!(Ratio::from_integer(5), Ratio::new(5, 1));
    /// ```
    #[must_use]
    pub const fn from_integer(value: i64) -> Ratio {
        Ratio { num: value, den: 1 }
    }

    /// The reduced numerator (sign-carrying).
    #[must_use]
    pub const fn numer(self) -> i64 {
        self.num
    }

    /// The reduced denominator (always strictly positive).
    #[must_use]
    pub const fn denom(self) -> i64 {
        self.den
    }

    /// Whether this rational is exactly zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Whether this rational is an integer (denominator one).
    #[must_use]
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Whether this rational lies in the closed interval `[0, 1]`.
    ///
    /// Useful as a sanity check for probabilities.
    #[must_use]
    pub fn is_probability(self) -> bool {
        self >= Ratio::ZERO && self <= Ratio::ONE
    }

    /// Absolute value.
    ///
    /// # Examples
    ///
    /// ```
    /// use defender_num::Ratio;
    /// assert_eq!(Ratio::new(-3, 4).abs(), Ratio::new(3, 4));
    /// ```
    #[must_use]
    pub fn abs(self) -> Ratio {
        Ratio {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::DivisionByZero`] if `self` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use defender_num::Ratio;
    /// assert_eq!(Ratio::new(2, 3).recip().unwrap(), Ratio::new(3, 2));
    /// ```
    pub fn recip(self) -> Result<Ratio, RatioError> {
        if self.num == 0 {
            return Err(RatioError::DivisionByZero);
        }
        make(i128::from(self.den), i128::from(self.num))
    }

    /// Checked addition.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::Overflow`] if the reduced sum does not fit.
    pub fn checked_add(self, rhs: Ratio) -> Result<Ratio, RatioError> {
        let num =
            i128::from(self.num) * i128::from(rhs.den) + i128::from(rhs.num) * i128::from(self.den);
        make(num, i128::from(self.den) * i128::from(rhs.den))
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::Overflow`] if the reduced difference does not fit.
    pub fn checked_sub(self, rhs: Ratio) -> Result<Ratio, RatioError> {
        self.checked_add(Ratio {
            num: -rhs.num,
            den: rhs.den,
        })
    }

    /// Checked multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::Overflow`] if the reduced product does not fit.
    pub fn checked_mul(self, rhs: Ratio) -> Result<Ratio, RatioError> {
        make(
            i128::from(self.num) * i128::from(rhs.num),
            i128::from(self.den) * i128::from(rhs.den),
        )
    }

    /// Checked division.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::DivisionByZero`] if `rhs` is zero, or
    /// [`RatioError::Overflow`] if the reduced quotient does not fit.
    pub fn checked_div(self, rhs: Ratio) -> Result<Ratio, RatioError> {
        if rhs.num == 0 {
            return Err(RatioError::DivisionByZero);
        }
        make(
            i128::from(self.num) * i128::from(rhs.den),
            i128::from(self.den) * i128::from(rhs.num),
        )
    }

    /// Raises to a (possibly negative) integer power.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::DivisionByZero`] for `0^negative`, and
    /// [`RatioError::Overflow`] if any intermediate does not fit.
    ///
    /// # Examples
    ///
    /// ```
    /// use defender_num::Ratio;
    /// assert_eq!(Ratio::new(2, 3).pow(2).unwrap(), Ratio::new(4, 9));
    /// assert_eq!(Ratio::new(2, 3).pow(-1).unwrap(), Ratio::new(3, 2));
    /// ```
    pub fn pow(self, exp: i32) -> Result<Ratio, RatioError> {
        let base = if exp < 0 { self.recip()? } else { self };
        let mut acc = Ratio::ONE;
        for _ in 0..exp.unsigned_abs() {
            acc = acc.checked_mul(base)?;
        }
        Ok(acc)
    }

    /// Nearest `f64` approximation (for reporting only — never for logic).
    ///
    /// # Examples
    ///
    /// ```
    /// use defender_num::Ratio;
    /// assert_eq!(Ratio::new(1, 4).to_f64(), 0.25);
    /// ```
    #[must_use]
    // lint: allow(exactness) reporting-only conversion, excluded from all NE logic
    pub fn to_f64(self) -> f64 {
        // lint: allow(exactness) reporting-only conversion, excluded from all NE logic
        self.num as f64 / self.den as f64
    }

    /// The smaller of `self` and `other`.
    #[must_use]
    pub fn min(self, other: Ratio) -> Ratio {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Ratio) -> Ratio {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Ratio {
    fn default() -> Ratio {
        Ratio::ZERO
    }
}

impl From<i64> for Ratio {
    fn from(value: i64) -> Ratio {
        Ratio::from_integer(value)
    }
}

impl From<i32> for Ratio {
    fn from(value: i32) -> Ratio {
        Ratio::from_integer(i64::from(value))
    }
}

impl From<u32> for Ratio {
    fn from(value: u32) -> Ratio {
        Ratio::from_integer(i64::from(value))
    }
}

impl From<usize> for Ratio {
    /// Converts a count to a rational.
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds `i64::MAX` (impossible for the graph sizes
    /// this workspace handles).
    fn from(value: usize) -> Ratio {
        // lint: allow(panic) documented contract: counts here are graph sizes, far below i64::MAX
        Ratio::from_integer(i64::try_from(value).expect("count fits in i64"))
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        // lint: allow(panic) operator contract: overflow aborts the run; checked_add is the fallible form
        self.checked_add(rhs).expect("Ratio addition overflow")
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        // lint: allow(panic) operator contract: overflow aborts the run; checked_sub is the fallible form
        self.checked_sub(rhs).expect("Ratio subtraction overflow")
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        self.checked_mul(rhs)
            // lint: allow(panic) operator contract: overflow aborts the run; checked_mul is the fallible form
            .expect("Ratio multiplication overflow")
    }
}

impl Div for Ratio {
    type Output = Ratio;
    fn div(self, rhs: Ratio) -> Ratio {
        self.checked_div(rhs)
            // lint: allow(panic) operator contract; checked_div is the fallible form
            .expect("Ratio division by zero or overflow")
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}

impl SubAssign for Ratio {
    fn sub_assign(&mut self, rhs: Ratio) {
        *self = *self - rhs;
    }
}

impl MulAssign for Ratio {
    fn mul_assign(&mut self, rhs: Ratio) {
        *self = *self * rhs;
    }
}

impl DivAssign for Ratio {
    fn div_assign(&mut self, rhs: Ratio) {
        // lint: allow(arith) delegates to Div; a zero divisor panics there by contract
        *self = *self / rhs;
    }
}

impl Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Ratio> for Ratio {
    fn sum<I: Iterator<Item = &'a Ratio>>(iter: I) -> Ratio {
        iter.copied().sum()
    }
}

impl Product for Ratio {
    fn product<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ONE, Mul::mul)
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order;
        // i128 intermediates cannot overflow for i64 components.
        let lhs = i128::from(self.num) * i128::from(other.den);
        let rhs = i128::from(other.num) * i128::from(self.den);
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ratio({self})")
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error returned when parsing a [`Ratio`] from a string fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseRatioError {
    message: String,
}

impl fmt::Display for ParseRatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.message)
    }
}

impl std::error::Error for ParseRatioError {}

impl FromStr for Ratio {
    type Err = ParseRatioError;

    /// Parses `"a"` or `"a/b"` with optional surrounding whitespace.
    ///
    /// # Examples
    ///
    /// ```
    /// use defender_num::Ratio;
    /// let r: Ratio = "3/6".parse()?;
    /// assert_eq!(r, Ratio::new(1, 2));
    /// # Ok::<(), defender_num::ParseRatioError>(())
    /// ```
    fn from_str(s: &str) -> Result<Ratio, ParseRatioError> {
        let s = s.trim();
        let err = |message: &str| ParseRatioError {
            message: message.to_owned(),
        };
        match s.split_once('/') {
            None => {
                let num: i64 = s.parse().map_err(|_| err("numerator is not an integer"))?;
                Ok(Ratio::from_integer(num))
            }
            Some((numer, denom)) => {
                let num: i64 = numer
                    .trim()
                    .parse()
                    .map_err(|_| err("numerator is not an integer"))?;
                let den: i64 = denom
                    .trim()
                    .parse()
                    .map_err(|_| err("denominator is not an integer"))?;
                Ratio::checked_new(num, den).map_err(|e| err(&e.to_string()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, 4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(2, -4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(-2, -4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(0, 7).denom(), 1);
    }

    #[test]
    fn zero_denominator_rejected() {
        assert_eq!(Ratio::checked_new(1, 0), Err(RatioError::ZeroDenominator));
    }

    #[test]
    #[should_panic(expected = "denominator must be non-zero")]
    fn new_panics_on_zero_denominator() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Ratio::new(1, 2);
        let b = Ratio::new(1, 3);
        assert_eq!(a + b, Ratio::new(5, 6));
        assert_eq!(a - b, Ratio::new(1, 6));
        assert_eq!(a * b, Ratio::new(1, 6));
        assert_eq!(a / b, Ratio::new(3, 2));
        assert_eq!(-a, Ratio::new(-1, 2));
    }

    #[test]
    fn assignment_operators() {
        let mut r = Ratio::new(1, 2);
        r += Ratio::new(1, 2);
        assert_eq!(r, Ratio::ONE);
        r -= Ratio::new(1, 4);
        assert_eq!(r, Ratio::new(3, 4));
        r *= Ratio::new(4, 3);
        assert_eq!(r, Ratio::ONE);
        r /= Ratio::new(1, 2);
        assert_eq!(r, Ratio::from(2));
    }

    #[test]
    fn division_by_zero() {
        assert_eq!(
            Ratio::ONE.checked_div(Ratio::ZERO),
            Err(RatioError::DivisionByZero)
        );
        assert_eq!(Ratio::ZERO.recip(), Err(RatioError::DivisionByZero));
    }

    #[test]
    fn ordering_is_exact() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::new(-1, 3));
        assert!(Ratio::new(2, 4) == Ratio::new(1, 2));
        assert!(Ratio::new(7, 8) > Ratio::new(6, 7));
        // Large components where f64 comparison would be wrong:
        let a = Ratio::new(i64::MAX, i64::MAX - 1);
        let b = Ratio::new(i64::MAX - 1, i64::MAX - 2);
        assert!(a < b);
        assert!(
            (a.to_f64() - b.to_f64()).abs() < f64::EPSILON,
            "f64 cannot tell them apart"
        );
    }

    #[test]
    fn min_max() {
        let a = Ratio::new(1, 3);
        let b = Ratio::new(1, 2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn sums_and_products() {
        let parts: Vec<Ratio> = (1..=4).map(|i| Ratio::new(1, i)).collect();
        assert_eq!(parts.iter().sum::<Ratio>(), Ratio::new(25, 12));
        assert_eq!(parts.into_iter().product::<Ratio>(), Ratio::new(1, 24));
    }

    #[test]
    fn probability_check() {
        assert!(Ratio::ZERO.is_probability());
        assert!(Ratio::ONE.is_probability());
        assert!(Ratio::new(3, 7).is_probability());
        assert!(!Ratio::new(-1, 7).is_probability());
        assert!(!Ratio::new(8, 7).is_probability());
    }

    #[test]
    fn powers() {
        assert_eq!(Ratio::new(2, 3).pow(0).unwrap(), Ratio::ONE);
        assert_eq!(Ratio::new(2, 3).pow(3).unwrap(), Ratio::new(8, 27));
        assert_eq!(Ratio::new(2, 3).pow(-2).unwrap(), Ratio::new(9, 4));
        assert_eq!(Ratio::ZERO.pow(-1), Err(RatioError::DivisionByZero));
    }

    #[test]
    fn display_and_parse_round_trip() {
        for r in [
            Ratio::new(3, 4),
            Ratio::from(-7),
            Ratio::ZERO,
            Ratio::new(-9, 5),
        ] {
            let shown = r.to_string();
            let back: Ratio = shown.parse().unwrap();
            assert_eq!(back, r, "round-trip through {shown}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Ratio>().is_err());
        assert!("a/b".parse::<Ratio>().is_err());
        assert!("1/0".parse::<Ratio>().is_err());
        assert!("1/2/3".parse::<Ratio>().is_err());
        assert_eq!(" 4 / 6 ".parse::<Ratio>().unwrap(), Ratio::new(2, 3));
    }

    #[test]
    fn overflow_is_detected_not_wrapped() {
        let big = Ratio::new(i64::MAX, 1);
        assert_eq!(big.checked_add(big), Err(RatioError::Overflow));
        assert_eq!(big.checked_mul(big), Err(RatioError::Overflow));
        // But reducible near-overflow results still succeed:
        let half_big = Ratio::new(i64::MAX / 2, 1);
        assert!(half_big.checked_add(half_big).is_ok());
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", Ratio::new(1, 2)), "Ratio(1/2)");
        assert_eq!(format!("{:?}", Ratio::ZERO), "Ratio(0)");
    }

    #[test]
    fn conversions() {
        assert_eq!(Ratio::from(5i64), Ratio::new(5, 1));
        assert_eq!(Ratio::from(5i32), Ratio::new(5, 1));
        assert_eq!(Ratio::from(5u32), Ratio::new(5, 1));
        assert_eq!(Ratio::from(5usize), Ratio::new(5, 1));
        assert_eq!(Ratio::new(9, 3).to_f64(), 3.0);
        assert!(Ratio::new(9, 3).is_integer());
        assert!(!Ratio::new(9, 4).is_integer());
    }
}
