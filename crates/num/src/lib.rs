//! Exact rational arithmetic for equilibrium computations.
//!
//! Nash-equilibrium probabilities and expected payoffs in the Tuple model
//! are rationals with small denominators (`1/δ`, `k/|E(D(tp))|`, `k·ν/|IS|`,
//! …). Verifying the characterization of Theorem 3.4 requires *exact*
//! equality tests between such quantities, which floating point cannot
//! provide. This crate supplies [`Ratio`], a reduced fraction with an `i64`
//! numerator and positive `i64` denominator whose arithmetic is carried out
//! in `i128` so intermediate products cannot overflow.
//!
//! # Examples
//!
//! ```
//! use defender_num::Ratio;
//!
//! let a = Ratio::new(1, 3);
//! let b = Ratio::new(1, 6);
//! assert_eq!(a + b, Ratio::new(1, 2));
//! assert_eq!((a + b).to_f64(), 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod accum;
mod ratio;
pub mod rng;

pub use accum::{row_eliminate, row_scale_div, RatioAccum};
pub use ratio::{ParseRatioError, Ratio, RatioError};

/// Greatest common divisor of two non-negative integers (Euclid).
///
/// Defined so that `gcd(0, x) == x`; in particular `gcd(0, 0) == 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(defender_num::gcd(12, 18), 6);
/// assert_eq!(defender_num::gcd(0, 7), 7);
/// ```
#[must_use]
pub fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b; // lint: allow(arith) loop guard: b != 0
        a = b;
        b = r;
    }
    a
}

/// Least common multiple of two non-negative integers.
///
/// # Panics
///
/// Panics if the result overflows `u128`.
///
/// # Examples
///
/// ```
/// assert_eq!(defender_num::lcm(4, 6), 12);
/// assert_eq!(defender_num::lcm(0, 5), 0);
/// ```
#[must_use]
pub fn lcm(a: u128, b: u128) -> u128 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(1, 1), 1);
        assert_eq!(gcd(21, 14), 7);
        assert_eq!(gcd(14, 21), 7);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd(100, 100), 100);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(0, 3), 0);
        assert_eq!(lcm(3, 0), 0);
        assert_eq!(lcm(6, 8), 24);
        assert_eq!(lcm(7, 7), 7);
        assert_eq!(lcm(5, 7), 35);
    }

    #[test]
    fn gcd_lcm_product_identity() {
        for a in 1u128..40 {
            for b in 1u128..40 {
                assert_eq!(gcd(a, b) * lcm(a, b), a * b, "a={a} b={b}");
            }
        }
    }
}
