//! Property-based tests: `Ratio` behaves like the field of rationals.
//!
//! Driven by the vendored seeded PRNG (`defender_num::rng`) instead of an
//! external property-testing framework, so the workspace builds offline;
//! each property is checked on a few thousand random instances per run,
//! deterministically per seed.

use defender_num::rng::{Rng, StdRng};
use defender_num::{gcd, Ratio};

const CASES: usize = 2_000;

/// Components small enough that no reduced intermediate can overflow,
/// but large enough to exercise reduction paths thoroughly.
fn random_ratio<R: Rng + ?Sized>(rng: &mut R) -> Ratio {
    let n = rng.gen_range(0..20_001) as i64 - 10_000;
    let d = rng.gen_range(1..10_001) as i64;
    Ratio::new(n, d)
}

fn for_each_case(test_name: &str, mut body: impl FnMut(&mut StdRng)) {
    // Distinct seeds per property keep the cases independent.
    let mut seed = 0u64;
    for b in test_name.bytes() {
        seed = seed.wrapping_mul(31).wrapping_add(u64::from(b));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..CASES {
        body(&mut rng);
    }
}

#[test]
fn invariants_hold() {
    for_each_case("invariants_hold", |rng| {
        let r = random_ratio(rng);
        assert!(r.denom() > 0);
        let g = gcd(r.numer().unsigned_abs() as u128, r.denom() as u128);
        assert!(g == 1 || (r.numer() == 0 && r.denom() == 1));
    });
}

#[test]
fn addition_commutes_and_associates() {
    for_each_case("addition_commutes_and_associates", |rng| {
        let (a, b, c) = (random_ratio(rng), random_ratio(rng), random_ratio(rng));
        assert_eq!(a + b, b + a);
        assert_eq!((a + b) + c, a + (b + c));
    });
}

#[test]
fn multiplication_commutes_and_associates() {
    for_each_case("multiplication_commutes_and_associates", |rng| {
        let (a, b, c) = (random_ratio(rng), random_ratio(rng), random_ratio(rng));
        assert_eq!(a * b, b * a);
        assert_eq!((a * b) * c, a * (b * c));
    });
}

#[test]
fn distributivity() {
    for_each_case("distributivity", |rng| {
        let (a, b, c) = (random_ratio(rng), random_ratio(rng), random_ratio(rng));
        assert_eq!(a * (b + c), a * b + a * c);
    });
}

#[test]
fn additive_inverse() {
    for_each_case("additive_inverse", |rng| {
        let a = random_ratio(rng);
        assert_eq!(a + (-a), Ratio::ZERO);
        assert_eq!(a - a, Ratio::ZERO);
    });
}

#[test]
fn multiplicative_inverse() {
    for_each_case("multiplicative_inverse", |rng| {
        let a = random_ratio(rng);
        if !a.is_zero() {
            assert_eq!(a * a.recip().unwrap(), Ratio::ONE);
            assert_eq!(a / a, Ratio::ONE);
        }
    });
}

#[test]
fn identities() {
    for_each_case("identities", |rng| {
        let a = random_ratio(rng);
        assert_eq!(a + Ratio::ZERO, a);
        assert_eq!(a * Ratio::ONE, a);
        assert_eq!(a * Ratio::ZERO, Ratio::ZERO);
    });
}

#[test]
fn order_total_and_consistent() {
    for_each_case("order_total_and_consistent", |rng| {
        let (a, b) = (random_ratio(rng), random_ratio(rng));
        // Exactly one of <, ==, > holds, and order agrees with subtraction sign.
        let diff = a - b;
        match a.cmp(&b) {
            std::cmp::Ordering::Less => assert!(diff.numer() < 0),
            std::cmp::Ordering::Equal => assert!(diff.is_zero()),
            std::cmp::Ordering::Greater => assert!(diff.numer() > 0),
        }
    });
}

#[test]
fn order_respects_addition() {
    for_each_case("order_respects_addition", |rng| {
        let (a, b, c) = (random_ratio(rng), random_ratio(rng), random_ratio(rng));
        if a <= b {
            assert!(a + c <= b + c);
        }
    });
}

#[test]
fn to_f64_is_close() {
    for_each_case("to_f64_is_close", |rng| {
        let a = random_ratio(rng);
        let approx = a.to_f64();
        let exact = a.numer() as f64 / a.denom() as f64;
        assert_eq!(approx, exact);
    });
}

#[test]
fn display_parse_round_trip() {
    for_each_case("display_parse_round_trip", |rng| {
        let a = random_ratio(rng);
        let back: Ratio = a.to_string().parse().unwrap();
        assert_eq!(back, a);
    });
}
