//! Property-based tests: `Ratio` behaves like the field of rationals.

use defender_num::{gcd, Ratio};
use proptest::prelude::*;

/// Components small enough that no reduced intermediate can overflow,
/// but large enough to exercise reduction paths thoroughly.
fn ratio_strategy() -> impl Strategy<Value = Ratio> {
    (-10_000i64..=10_000, 1i64..=10_000).prop_map(|(n, d)| Ratio::new(n, d))
}

proptest! {
    #[test]
    fn invariants_hold(r in ratio_strategy()) {
        prop_assert!(r.denom() > 0);
        let g = gcd(r.numer().unsigned_abs() as u128, r.denom() as u128);
        prop_assert!(g == 1 || (r.numer() == 0 && r.denom() == 1));
    }

    #[test]
    fn addition_commutes(a in ratio_strategy(), b in ratio_strategy()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn addition_associates(a in ratio_strategy(), b in ratio_strategy(), c in ratio_strategy()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn multiplication_commutes(a in ratio_strategy(), b in ratio_strategy()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn multiplication_associates(a in ratio_strategy(), b in ratio_strategy(), c in ratio_strategy()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributivity(a in ratio_strategy(), b in ratio_strategy(), c in ratio_strategy()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn additive_inverse(a in ratio_strategy()) {
        prop_assert_eq!(a + (-a), Ratio::ZERO);
        prop_assert_eq!(a - a, Ratio::ZERO);
    }

    #[test]
    fn multiplicative_inverse(a in ratio_strategy()) {
        if !a.is_zero() {
            prop_assert_eq!(a * a.recip().unwrap(), Ratio::ONE);
            prop_assert_eq!(a / a, Ratio::ONE);
        }
    }

    #[test]
    fn identities(a in ratio_strategy()) {
        prop_assert_eq!(a + Ratio::ZERO, a);
        prop_assert_eq!(a * Ratio::ONE, a);
        prop_assert_eq!(a * Ratio::ZERO, Ratio::ZERO);
    }

    #[test]
    fn order_total_and_consistent(a in ratio_strategy(), b in ratio_strategy()) {
        // Exactly one of <, ==, > holds, and order agrees with subtraction sign.
        let diff = a - b;
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(diff.numer() < 0),
            std::cmp::Ordering::Equal => prop_assert!(diff.is_zero()),
            std::cmp::Ordering::Greater => prop_assert!(diff.numer() > 0),
        }
    }

    #[test]
    fn order_respects_addition(a in ratio_strategy(), b in ratio_strategy(), c in ratio_strategy()) {
        if a <= b {
            prop_assert!(a + c <= b + c);
        }
    }

    #[test]
    fn to_f64_is_close(a in ratio_strategy()) {
        let approx = a.to_f64();
        let exact = a.numer() as f64 / a.denom() as f64;
        prop_assert_eq!(approx, exact);
    }

    #[test]
    fn display_parse_round_trip(a in ratio_strategy()) {
        let back: Ratio = a.to_string().parse().unwrap();
        prop_assert_eq!(back, a);
    }
}
