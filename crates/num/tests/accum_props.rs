//! Differential properties of the deferred-reduction kernels: on seeded
//! random inputs, `RatioAccum` / `dot` / the slice kernels must agree
//! *exactly* with the naive per-op `Ratio` arithmetic.

use defender_num::rng::{Rng, StdRng};
use defender_num::{row_eliminate, row_scale_div, Ratio, RatioAccum};

fn random_ratio(rng: &mut StdRng) -> Ratio {
    let num = rng.gen_range(0..41) as i64 - 20;
    let den = rng.gen_range(1..13) as i64;
    Ratio::new(num, den)
}

#[test]
fn accum_sum_agrees_with_naive_on_random_sequences() {
    let mut rng = StdRng::seed_from_u64(0xACC0);
    for _ in 0..500 {
        let len = rng.gen_range(0..24);
        let parts: Vec<Ratio> = (0..len).map(|_| random_ratio(&mut rng)).collect();
        let naive: Ratio = parts.iter().sum();
        let mut acc = RatioAccum::new();
        for &p in &parts {
            acc.add(p);
        }
        assert_eq!(acc.finish(), naive, "sequence {parts:?}");
        assert_eq!(Ratio::sum_iter(parts.iter().copied()), naive);
    }
}

#[test]
fn accum_mixed_ops_agree_with_naive() {
    let mut rng = StdRng::seed_from_u64(0xACC1);
    for _ in 0..500 {
        let mut acc = RatioAccum::new();
        let mut naive = Ratio::ZERO;
        for _ in 0..rng.gen_range(1..20) {
            let a = random_ratio(&mut rng);
            match rng.gen_range(0..3) {
                0 => {
                    acc.add(a);
                    naive += a;
                }
                1 => {
                    acc.sub(a);
                    naive -= a;
                }
                _ => {
                    let b = random_ratio(&mut rng);
                    acc.add_mul(a, b);
                    naive += a * b;
                }
            }
        }
        assert_eq!(acc.finish(), naive);
    }
}

#[test]
fn dot_agrees_with_naive_on_random_vectors() {
    let mut rng = StdRng::seed_from_u64(0xACC2);
    for _ in 0..500 {
        let len = rng.gen_range(0..16);
        let xs: Vec<Ratio> = (0..len).map(|_| random_ratio(&mut rng)).collect();
        let ys: Vec<Ratio> = (0..len).map(|_| random_ratio(&mut rng)).collect();
        let naive: Ratio = xs.iter().zip(&ys).map(|(&x, &y)| x * y).sum();
        assert_eq!(Ratio::dot(&xs, &ys), naive);
        assert_eq!(Ratio::dot_iter(xs.iter().copied().zip(ys)), naive);
    }
}

#[test]
fn row_kernels_agree_with_naive_on_random_rows() {
    let mut rng = StdRng::seed_from_u64(0xACC3);
    for _ in 0..500 {
        let len = rng.gen_range(1..12);
        let pivot: Vec<Ratio> = (0..len).map(|_| random_ratio(&mut rng)).collect();
        let row: Vec<Ratio> = (0..len).map(|_| random_ratio(&mut rng)).collect();
        let factor = random_ratio(&mut rng);

        let mut eliminated = row.clone();
        row_eliminate(&mut eliminated, factor, &pivot);
        let naive: Vec<Ratio> = row
            .iter()
            .zip(&pivot)
            .map(|(&v, &p)| v - factor * p)
            .collect();
        assert_eq!(eliminated, naive);

        let mut divisor = random_ratio(&mut rng);
        if divisor.is_zero() {
            divisor = Ratio::ONE;
        }
        let mut scaled = row.clone();
        row_scale_div(&mut scaled, divisor);
        let naive_scaled: Vec<Ratio> = row.iter().map(|&v| v / divisor).collect();
        assert_eq!(scaled, naive_scaled);
    }
}

#[test]
fn accum_survives_magnitudes_that_stress_renormalization() {
    // Large coprime denominators force the unreduced product of dens to
    // blow through i128 quickly; the accumulator must renormalize and
    // still land on the exact total.
    // Cycling through three coprime ~10^6 denominators keeps the *reduced*
    // total inside i64 (so the naive path succeeds) while the *unreduced*
    // denominator product blows through i128 after a handful of merges.
    let dens = [1_000_003i64, 1_000_033, 1_000_037];
    let mut rng = StdRng::seed_from_u64(0xACC4);
    for _ in 0..50 {
        let parts: Vec<Ratio> = (0..40)
            .map(|i| Ratio::new(rng.gen_range(1..1000) as i64, dens[i % dens.len()]))
            .collect();
        let naive: Ratio = parts.iter().sum();
        assert_eq!(Ratio::sum_iter(parts.iter().copied()), naive);
    }
}
