//! König's theorem: minimum vertex cover of a bipartite graph from a
//! maximum matching.
//!
//! Theorem 5.1 of the paper computes a k-matching NE on a bipartite graph
//! by feeding `A_tuple` a *minimum vertex cover* `VC` and the complementary
//! independent set `IS`; König's construction additionally matches every
//! `VC` vertex to a private `IS` vertex, which is exactly what the
//! matching-NE construction needs.

use std::collections::VecDeque;

use defender_graph::{Graph, VertexId, VertexSet};

use crate::{hopcroft_karp, Matching};

/// A minimum vertex cover of a bipartite graph, with the maximum matching
/// certifying its optimality.
#[derive(Clone, Debug)]
pub struct KoenigCover {
    /// The minimum vertex cover, sorted. `|cover| == matching.len()`.
    pub cover: VertexSet,
    /// A maximum matching of the same size (the duality witness).
    pub matching: Matching,
}

/// Computes a minimum vertex cover of the bipartite graph split as
/// `(left, right)` via König's construction.
///
/// Vertices reachable from unmatched left vertices by alternating paths
/// (`Z`) yield the cover `(L \ Z) ∪ (R ∩ Z)`. Every cover vertex is matched
/// by the returned maximum matching, and its partner lies outside the cover
/// — the property the matching-NE construction relies on.
///
/// # Panics
///
/// Panics if `left`/`right` overlap (see
/// [`hopcroft_karp()`](fn@crate::hopcroft_karp)).
///
/// # Examples
///
/// ```
/// use defender_graph::{generators, VertexId};
/// use defender_matching::koenig_vertex_cover;
///
/// let g = generators::complete_bipartite(2, 5);
/// let left: Vec<_> = (0..2).map(VertexId::new).collect();
/// let right: Vec<_> = (2..7).map(VertexId::new).collect();
/// let k = koenig_vertex_cover(&g, &left, &right);
/// assert_eq!(k.cover, left); // the small side covers K_{2,5}
/// assert_eq!(k.matching.len(), 2);
/// ```
#[must_use]
pub fn koenig_vertex_cover(graph: &Graph, left: &[VertexId], right: &[VertexId]) -> KoenigCover {
    let matching = hopcroft_karp(graph, left, right);
    let n = graph.vertex_count();
    let mut is_left = vec![false; n];
    for &v in left {
        is_left[v.index()] = true;
    }
    let mut is_right = vec![false; n];
    for &v in right {
        is_right[v.index()] = true;
    }

    // Alternating BFS from unmatched left vertices:
    // left -> right via NON-matching edges, right -> left via matching edges.
    let mut in_z = vec![false; n];
    let mut queue: VecDeque<VertexId> = left
        .iter()
        .copied()
        .filter(|&v| !matching.is_matched(v))
        .collect();
    for &v in &queue {
        in_z[v.index()] = true;
    }
    while let Some(v) = queue.pop_front() {
        if is_left[v.index()] {
            for w in graph.neighbors(v) {
                if is_right[w.index()] && !in_z[w.index()] && matching.partner(v) != Some(w) {
                    in_z[w.index()] = true;
                    queue.push_back(w);
                }
            }
        } else if let Some(w) = matching.partner(v) {
            if !in_z[w.index()] {
                in_z[w.index()] = true;
                queue.push_back(w);
            }
        }
    }

    let mut cover: VertexSet = Vec::new();
    for &v in left {
        if !in_z[v.index()] {
            cover.push(v);
        }
    }
    for &v in right {
        if in_z[v.index()] {
            cover.push(v);
        }
    }
    cover.sort_unstable();
    KoenigCover { cover, matching }
}

/// Convenience wrapper: bipartition the graph first, then apply König.
///
/// # Errors
///
/// Returns [`defender_graph::GraphError::NotBipartite`] when no
/// bipartition exists.
pub fn koenig_auto(graph: &Graph) -> Result<KoenigCover, defender_graph::GraphError> {
    let bp = defender_graph::properties::bipartition(graph)?;
    Ok(koenig_vertex_cover(graph, &bp.left, &bp.right))
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_graph::{generators, vertex_cover, GraphBuilder};
    use defender_num::rng::StdRng;

    fn ids(range: std::ops::Range<usize>) -> Vec<VertexId> {
        range.map(VertexId::new).collect()
    }

    #[test]
    fn cover_size_equals_matching_size() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..25 {
            let g = generators::random_bipartite(7, 9, 0.25, &mut rng);
            let k = koenig_vertex_cover(&g, &ids(0..7), &ids(7..16));
            assert_eq!(k.cover.len(), k.matching.len(), "König duality");
            assert!(vertex_cover::is_vertex_cover(&g, &k.cover));
        }
    }

    #[test]
    fn cover_is_minimum_against_exact() {
        let mut rng = StdRng::seed_from_u64(20);
        for _ in 0..10 {
            let g = generators::random_bipartite(5, 6, 0.3, &mut rng);
            let k = koenig_vertex_cover(&g, &ids(0..5), &ids(5..11));
            assert_eq!(k.cover.len(), vertex_cover::cover_number_exact(&g));
        }
    }

    #[test]
    fn every_cover_vertex_matched_outside_cover() {
        let mut rng = StdRng::seed_from_u64(30);
        for _ in 0..25 {
            let g = generators::random_bipartite(6, 8, 0.3, &mut rng);
            let k = koenig_vertex_cover(&g, &ids(0..6), &ids(6..14));
            for &v in &k.cover {
                let partner = k.matching.partner(v).expect("cover vertices are matched");
                assert!(
                    k.cover.binary_search(&partner).is_err(),
                    "partner of {v} must lie in the independent side"
                );
            }
        }
    }

    #[test]
    fn path_cover() {
        let g = generators::path(4);
        let k = koenig_auto(&g).unwrap();
        assert_eq!(k.cover.len(), 2);
        assert!(vertex_cover::is_vertex_cover(&g, &k.cover));
    }

    #[test]
    fn star_cover_is_center() {
        let g = generators::star(6);
        let k = koenig_auto(&g).unwrap();
        assert_eq!(k.cover, vec![VertexId::new(0)]);
    }

    #[test]
    fn auto_rejects_odd_cycle() {
        assert!(koenig_auto(&generators::cycle(5)).is_err());
    }

    #[test]
    fn asymmetric_structure() {
        // l0-r0, l0-r1, l1-r1: VC = {l0, r1} or... τ = 2? Matching: l0-r0,
        // l1-r1 → μ = 2, so τ = 2.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 2).add_edge(0, 3).add_edge(1, 3);
        let g = b.build();
        let k = koenig_vertex_cover(&g, &ids(0..2), &ids(2..4));
        assert_eq!(k.cover.len(), 2);
        assert!(vertex_cover::is_vertex_cover(&g, &k.cover));
    }

    #[test]
    fn edgeless_graph_empty_cover() {
        let g = GraphBuilder::new(4).build();
        let k = koenig_vertex_cover(&g, &ids(0..2), &ids(2..4));
        assert!(k.cover.is_empty());
        assert!(k.matching.is_empty());
    }
}
