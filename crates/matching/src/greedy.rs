//! Greedy maximal matching — a fast baseline and warm start.

use defender_graph::Graph;

use crate::Matching;

/// Greedy maximal matching: scan edges in id order, take every edge whose
/// endpoints are both free. Deterministic, `O(m)`, and at least half the
/// size of a maximum matching.
///
/// # Examples
///
/// ```
/// use defender_graph::generators;
/// use defender_matching::greedy;
///
/// let m = greedy::maximal_matching(&generators::path(5));
/// assert_eq!(m.len(), 2);
/// assert!(m.is_maximal(&generators::path(5)));
/// ```
#[must_use]
pub fn maximal_matching(graph: &Graph) -> Matching {
    let mut partner = vec![None; graph.vertex_count()];
    for e in graph.edges() {
        let ep = graph.endpoints(e);
        if partner[ep.u().index()].is_none() && partner[ep.v().index()].is_none() {
            partner[ep.u().index()] = Some(ep.v());
            partner[ep.v().index()] = Some(ep.u());
        }
    }
    Matching::from_partner_map(graph, partner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_graph::generators;

    #[test]
    fn results_are_maximal_matchings() {
        for g in [
            generators::path(9),
            generators::cycle(7),
            generators::petersen(),
            generators::complete(6),
            generators::star(5),
        ] {
            let m = maximal_matching(&g);
            assert!(m.is_maximal(&g), "greedy result must be maximal");
            // Validity is enforced by Matching::from_partner_map panics.
            assert!(m.len() <= g.vertex_count() / 2);
        }
    }

    #[test]
    fn half_approximation_on_paths() {
        for n in 2..12 {
            let g = generators::path(n);
            let greedy = maximal_matching(&g).len();
            let maximum = crate::maximum_matching(&g).len();
            assert!(2 * greedy >= maximum, "n = {n}");
        }
    }

    #[test]
    fn star_matches_one_edge() {
        let m = maximal_matching(&generators::star(7));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn edgeless_graph_empty_matching() {
        let g = defender_graph::GraphBuilder::new(4).build();
        assert!(maximal_matching(&g).is_empty());
    }
}
