//! Minimum edge cover via Gallai's identity `ρ(G) = n − μ(G)`.
//!
//! This is the computational heart of Corollary 3.2: deciding whether
//! `Π_k(G)` has a pure Nash equilibrium amounts to comparing `k` with the
//! minimum edge-cover size, and *constructing* the equilibrium requires an
//! actual cover of that size (padded up to exactly `k` edges).

use defender_graph::{EdgeId, EdgeSet, Graph};

use crate::maximum_matching;

/// A minimum edge cover of `graph`: a maximum matching plus, for each
/// exposed vertex, one arbitrary incident edge (a "star completion").
///
/// Returns `None` when the graph has an isolated vertex (no cover exists)
/// or is empty of vertices (the empty cover would be ambiguous; callers
/// treat the empty graph specially).
///
/// The result has exactly `n − μ(G)` edges, which is optimal (Gallai 1959).
///
/// # Examples
///
/// ```
/// use defender_graph::generators;
/// use defender_matching::minimum_edge_cover;
///
/// // ρ(star with 4 leaves) = 4: every leaf needs its own spoke.
/// let cover = minimum_edge_cover(&generators::star(4)).unwrap();
/// assert_eq!(cover.len(), 4);
/// ```
#[must_use]
pub fn minimum_edge_cover(graph: &Graph) -> Option<EdgeSet> {
    if graph.vertex_count() == 0 {
        return Some(Vec::new());
    }
    if graph.has_isolated_vertex() {
        return None;
    }
    let matching = maximum_matching(graph);
    let mut cover: Vec<EdgeId> = matching.edges().to_vec();
    for v in matching.exposed_vertices() {
        let (_, e) = graph.incidence(v)[0];
        cover.push(e);
    }
    cover.sort_unstable();
    cover.dedup();
    Some(cover)
}

/// The edge-cover number `ρ(G)`, when defined.
#[must_use]
pub fn edge_cover_number(graph: &Graph) -> Option<usize> {
    minimum_edge_cover(graph).map(|c| c.len())
}

/// Extends a minimum edge cover to an edge cover of *exactly* `k` edges by
/// adding arbitrary extra edges, when possible.
///
/// Used by the pure-NE construction of Theorem 3.1, which needs the
/// defender's tuple (a set of `k` distinct edges) to cover all of `V`.
/// Returns `None` when `k < ρ(G)` (no cover that small), `k > m` (not
/// enough distinct edges), or no cover exists at all.
#[must_use]
pub fn edge_cover_of_size(graph: &Graph, k: usize) -> Option<EdgeSet> {
    let mut cover = minimum_edge_cover(graph)?;
    if cover.len() > k || k > graph.edge_count() {
        return None;
    }
    let mut chosen = vec![false; graph.edge_count()];
    for &e in &cover {
        chosen[e.index()] = true;
    }
    for e in graph.edges() {
        if cover.len() == k {
            break;
        }
        if !chosen[e.index()] {
            chosen[e.index()] = true;
            cover.push(e);
        }
    }
    cover.sort_unstable();
    (cover.len() == k).then_some(cover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_graph::{edge_cover, generators, GraphBuilder};
    use defender_num::rng::StdRng;

    #[test]
    fn known_edge_cover_numbers() {
        assert_eq!(edge_cover_number(&generators::path(2)), Some(1));
        assert_eq!(edge_cover_number(&generators::path(4)), Some(2));
        assert_eq!(edge_cover_number(&generators::path(5)), Some(3));
        assert_eq!(edge_cover_number(&generators::cycle(5)), Some(3));
        assert_eq!(edge_cover_number(&generators::cycle(6)), Some(3));
        assert_eq!(edge_cover_number(&generators::star(7)), Some(7));
        assert_eq!(edge_cover_number(&generators::complete(6)), Some(3));
        assert_eq!(edge_cover_number(&generators::petersen()), Some(5));
    }

    #[test]
    fn gallai_identity_holds() {
        let mut rng = StdRng::seed_from_u64(60);
        for _ in 0..30 {
            let g = generators::gnp_connected(13, 0.2, &mut rng);
            let mu = crate::maximum_matching(&g).len();
            let rho = edge_cover_number(&g).unwrap();
            assert_eq!(rho, g.vertex_count() - mu, "ρ = n − μ");
        }
    }

    #[test]
    fn result_is_a_cover() {
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..30 {
            let g = generators::gnp_connected(11, 0.25, &mut rng);
            let cover = minimum_edge_cover(&g).unwrap();
            assert!(edge_cover::is_edge_cover(&g, &cover));
        }
    }

    #[test]
    fn agrees_with_exhaustive_minimum() {
        let mut rng = StdRng::seed_from_u64(62);
        let mut tried = 0;
        while tried < 15 {
            let g = generators::gnp_connected(7, 0.2, &mut rng);
            if g.edge_count() > 14 {
                continue;
            }
            tried += 1;
            let fast = edge_cover_number(&g).unwrap();
            let slow = edge_cover::minimum_exact_small(&g).unwrap().len();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn isolated_vertex_has_no_cover() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        assert_eq!(minimum_edge_cover(&b.build()), None);
        assert_eq!(edge_cover_of_size(&b.build(), 3), None);
    }

    #[test]
    fn empty_graph_has_empty_cover() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(minimum_edge_cover(&g), Some(vec![]));
    }

    #[test]
    fn sized_cover_pads_and_bounds() {
        let g = generators::cycle(6); // ρ = 3, m = 6
        assert_eq!(edge_cover_of_size(&g, 2), None, "below ρ");
        for k in 3..=6 {
            let cover = edge_cover_of_size(&g, k).unwrap();
            assert_eq!(cover.len(), k);
            assert!(edge_cover::is_edge_cover(&g, &cover));
        }
        assert_eq!(edge_cover_of_size(&g, 7), None, "beyond m");
    }
}
