//! Hopcroft–Karp maximum bipartite matching in `O(m√n)`.
//!
//! Operates on an arbitrary [`Graph`] with an explicit `(left, right)`
//! split: only edges with one endpoint in each side are considered, so the
//! caller can match any vertex set into any other (e.g. `VC` into `IS` for
//! the matching-NE construction, where `G` itself need not be bipartite).

use std::collections::VecDeque;

use defender_graph::{Graph, VertexId};

use crate::Matching;

const NIL: usize = usize::MAX;

/// Computes a maximum matching between `left` and `right` using only edges
/// of `graph` that cross from one side to the other.
///
/// `left` and `right` must be disjoint; vertices outside both sides are
/// ignored. Returns a [`Matching`] of `graph` (partner map indexed by the
/// graph's own vertex ids).
///
/// # Panics
///
/// Panics if `left` and `right` intersect or contain out-of-range ids.
///
/// # Examples
///
/// ```
/// use defender_graph::{generators, VertexId};
/// use defender_matching::hopcroft_karp;
///
/// let g = generators::complete_bipartite(3, 3);
/// let left: Vec<_> = (0..3).map(VertexId::new).collect();
/// let right: Vec<_> = (3..6).map(VertexId::new).collect();
/// let m = hopcroft_karp(&g, &left, &right);
/// assert_eq!(m.len(), 3);
/// ```
#[must_use]
pub fn hopcroft_karp(graph: &Graph, left: &[VertexId], right: &[VertexId]) -> Matching {
    let n = graph.vertex_count();
    // side[v]: 0 = left, 1 = right, 2 = absent.
    let mut side = vec![2u8; n];
    for &v in left {
        side[v.index()] = 0;
    }
    for &v in right {
        assert_ne!(
            side[v.index()],
            0,
            "left and right sides must be disjoint ({v})"
        );
        side[v.index()] = 1;
    }

    // Local indices for the left side.
    let left_index: Vec<usize> = {
        let mut idx = vec![NIL; n];
        for (i, &v) in left.iter().enumerate() {
            idx[v.index()] = i;
        }
        idx
    };

    // Cross adjacency of each left vertex.
    let cross: Vec<Vec<VertexId>> = left
        .iter()
        .map(|&v| {
            graph
                .neighbors(v)
                .filter(|w| side[w.index()] == 1)
                .collect()
        })
        .collect();

    let mut match_left: Vec<Option<VertexId>> = vec![None; left.len()];
    let mut match_right: Vec<Option<usize>> = vec![None; n]; // right vertex -> left local idx
    let mut dist = vec![usize::MAX; left.len()];

    // BFS over free left vertices; layers of alternating paths.
    let bfs = |match_left: &[Option<VertexId>],
               match_right: &[Option<usize>],
               dist: &mut [usize]|
     -> bool {
        let mut queue = VecDeque::new();
        for (i, m) in match_left.iter().enumerate() {
            if m.is_none() {
                dist[i] = 0;
                queue.push_back(i);
            } else {
                dist[i] = usize::MAX;
            }
        }
        let mut found_free_right = false;
        while let Some(i) = queue.pop_front() {
            for &w in &cross[i] {
                match match_right[w.index()] {
                    None => found_free_right = true,
                    Some(j) => {
                        if dist[j] == usize::MAX {
                            dist[j] = dist[i] + 1;
                            queue.push_back(j);
                        }
                    }
                }
            }
        }
        found_free_right
    };

    // DFS along layered structure to find vertex-disjoint augmenting paths.
    fn dfs(
        i: usize,
        cross: &[Vec<VertexId>],
        match_left: &mut [Option<VertexId>],
        match_right: &mut [Option<usize>],
        dist: &mut [usize],
    ) -> bool {
        for idx in 0..cross[i].len() {
            let w = cross[i][idx];
            let advance = match match_right[w.index()] {
                None => true,
                Some(j) => {
                    dist[j] == dist[i].wrapping_add(1)
                        && dfs(j, cross, match_left, match_right, dist)
                }
            };
            if advance {
                match_left[i] = Some(w);
                match_right[w.index()] = Some(i);
                return true;
            }
        }
        dist[i] = usize::MAX;
        false
    }

    while bfs(&match_left, &match_right, &mut dist) {
        for i in 0..left.len() {
            if match_left[i].is_none() {
                let _ = dfs(i, &cross, &mut match_left, &mut match_right, &mut dist);
            }
        }
    }

    let mut partner: Vec<Option<VertexId>> = vec![None; n];
    for (i, m) in match_left.iter().enumerate() {
        if let Some(w) = m {
            partner[left[i].index()] = Some(*w);
            partner[w.index()] = Some(left[i]);
        }
    }
    let _ = left_index; // kept for readability; local indexing is positional
    Matching::from_partner_map(graph, partner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_graph::{generators, GraphBuilder};

    fn ids(range: std::ops::Range<usize>) -> Vec<VertexId> {
        range.map(VertexId::new).collect()
    }

    #[test]
    fn perfect_on_complete_bipartite() {
        let g = generators::complete_bipartite(4, 4);
        let m = hopcroft_karp(&g, &ids(0..4), &ids(4..8));
        assert_eq!(m.len(), 4);
        assert!(m.is_perfect(&g));
    }

    #[test]
    fn unbalanced_sides() {
        let g = generators::complete_bipartite(3, 7);
        let m = hopcroft_karp(&g, &ids(0..3), &ids(3..10));
        assert_eq!(m.len(), 3);
        assert!(m.saturates(&ids(0..3)));
    }

    #[test]
    fn respects_structure_not_just_counts() {
        // Two left vertices forced onto one right vertex: max matching 2.
        //   l0 - r0, l1 - r0, l1 - r1
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 2).add_edge(1, 2).add_edge(1, 3);
        let g = b.build();
        let m = hopcroft_karp(&g, &ids(0..2), &ids(2..4));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hall_violation_limits_matching() {
        // Three left vertices all adjacent only to one right vertex.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 3).add_edge(1, 3).add_edge(2, 3);
        let g = b.build();
        let m = hopcroft_karp(&g, &ids(0..3), &ids(3..4));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn ignores_non_cross_edges() {
        // Left side has internal edges; they must not be used.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1); // internal to left
        b.add_edge(0, 2).add_edge(1, 3);
        let g = b.build();
        let m = hopcroft_karp(&g, &ids(0..2), &ids(2..4));
        assert_eq!(m.len(), 2);
        for &e in m.edges() {
            let ep = g.endpoints(e);
            assert!(ep.u().index() < 2 && ep.v().index() >= 2);
        }
    }

    #[test]
    fn empty_sides() {
        let g = generators::path(4);
        assert!(hopcroft_karp(&g, &[], &ids(0..4)).is_empty());
        assert!(hopcroft_karp(&g, &ids(0..4), &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_sides_rejected() {
        let g = generators::path(3);
        let _ = hopcroft_karp(&g, &ids(0..2), &ids(1..3));
    }

    #[test]
    fn agrees_with_blossom_on_bipartite_graphs() {
        use defender_num::rng::StdRng;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let g = generators::random_bipartite(6, 8, 0.3, &mut rng);
            let hk = hopcroft_karp(&g, &ids(0..6), &ids(6..14));
            let general = crate::maximum_matching(&g);
            assert_eq!(hk.len(), general.len());
        }
    }

    #[test]
    fn path_matching_is_maximum() {
        // Path v0-v1-v2-v3-v4: bipartition {0,2,4} vs {1,3}, max matching 2.
        let g = generators::path(5);
        let left: Vec<VertexId> = [0, 2, 4].into_iter().map(VertexId::new).collect();
        let right: Vec<VertexId> = [1, 3].into_iter().map(VertexId::new).collect();
        let m = hopcroft_karp(&g, &left, &right);
        assert_eq!(m.len(), 2);
    }
}
