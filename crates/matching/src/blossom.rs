//! Edmonds' blossom algorithm: maximum matching in general graphs.
//!
//! Needed because Theorem 3.1 ties pure equilibria to *minimum edge covers*
//! of arbitrary graphs, and Gallai's identity `ρ(G) = n − μ(G)` reduces
//! those to maximum matchings — which on non-bipartite graphs require
//! blossom contraction. This is the classical `O(n³)` array-based
//! formulation: repeated alternating-tree searches, contracting odd cycles
//! (blossoms) to their base on the fly.

use std::collections::VecDeque;

use defender_graph::{Graph, VertexId};

use crate::{greedy, Matching};

const NIL: usize = usize::MAX;

struct Search<'a> {
    graph: &'a Graph,
    /// `mate[v]`: current partner of `v`, or NIL.
    mate: Vec<usize>,
    /// `parent[v]`: the "odd" parent of `v` in the alternating forest.
    parent: Vec<usize>,
    /// `base[v]`: the base vertex of the blossom currently containing `v`.
    base: Vec<usize>,
    /// Whether `v` is an even (outer) vertex of the current tree.
    used: Vec<bool>,
    /// Scratch marks for blossom contraction.
    blossom: Vec<bool>,
}

impl<'a> Search<'a> {
    fn new(graph: &'a Graph, mate: Vec<usize>) -> Search<'a> {
        let n = graph.vertex_count();
        Search {
            graph,
            mate,
            parent: vec![NIL; n],
            base: (0..n).collect(),
            used: vec![false; n],
            blossom: vec![false; n],
        }
    }

    /// Lowest common ancestor of `a` and `b` in the alternating tree,
    /// walking through blossom bases.
    fn lca(&self, mut a: usize, mut b: usize) -> usize {
        let n = self.graph.vertex_count();
        let mut seen = vec![false; n];
        loop {
            a = self.base[a];
            seen[a] = true;
            if self.mate[a] == NIL {
                break;
            }
            a = self.parent[self.mate[a]];
        }
        loop {
            b = self.base[b];
            if seen[b] {
                return b;
            }
            b = self.parent[self.mate[b]];
        }
    }

    /// Marks the blossom path from `v` down to base `b`, re-rooting parents
    /// through `child`.
    fn mark_path(&mut self, mut v: usize, b: usize, mut child: usize) {
        while self.base[v] != b {
            self.blossom[self.base[v]] = true;
            self.blossom[self.base[self.mate[v]]] = true;
            self.parent[v] = child;
            child = self.mate[v];
            v = self.parent[self.mate[v]];
        }
    }

    /// Grows an alternating tree from `root`; returns the far end of an
    /// augmenting path if one is found.
    fn find_augmenting_path(&mut self, root: usize) -> usize {
        let n = self.graph.vertex_count();
        self.used.iter_mut().for_each(|u| *u = false);
        self.parent.iter_mut().for_each(|p| *p = NIL);
        for (i, b) in self.base.iter_mut().enumerate() {
            *b = i;
        }
        self.used[root] = true;
        let mut queue = VecDeque::from([root]);
        while let Some(v) = queue.pop_front() {
            let neighbors: Vec<usize> = self
                .graph
                .neighbors(VertexId::new(v))
                .map(VertexId::index)
                .collect();
            for to in neighbors {
                if self.base[v] == self.base[to] || self.mate[v] == to {
                    continue;
                }
                if to == root || (self.mate[to] != NIL && self.parent[self.mate[to]] != NIL) {
                    // Found an odd cycle: contract the blossom.
                    defender_obs::counter!("matching.blossom.shrinks").incr();
                    let cur_base = self.lca(v, to);
                    self.blossom.iter_mut().for_each(|b| *b = false);
                    self.mark_path(v, cur_base, to);
                    self.mark_path(to, cur_base, v);
                    for i in 0..n {
                        if self.blossom[self.base[i]] {
                            self.base[i] = cur_base;
                            if !self.used[i] {
                                self.used[i] = true;
                                queue.push_back(i);
                            }
                        }
                    }
                } else if self.parent[to] == NIL {
                    self.parent[to] = v;
                    if self.mate[to] == NIL {
                        return to; // augmenting path root ~> to
                    }
                    self.used[self.mate[to]] = true;
                    queue.push_back(self.mate[to]);
                }
            }
        }
        NIL
    }

    /// Flips matched/unmatched edges along the found path ending at `v`.
    fn augment(&mut self, mut v: usize) {
        while v != NIL {
            let pv = self.parent[v];
            let next = self.mate[pv];
            self.mate[v] = pv;
            self.mate[pv] = v;
            v = next;
        }
    }
}

/// Maximum matching of an arbitrary graph (Edmonds, `O(n³)`).
///
/// Starts from a greedy maximal matching and augments until no augmenting
/// path exists, which by Berge's lemma certifies maximality.
///
/// # Examples
///
/// ```
/// use defender_graph::generators;
/// use defender_matching::maximum_matching;
///
/// // Odd cycles need blossoms: μ(C5) = 2.
/// assert_eq!(maximum_matching(&generators::cycle(5)).len(), 2);
/// ```
#[must_use]
pub fn maximum_matching(graph: &Graph) -> Matching {
    let _span = defender_obs::span!("blossom_matching");
    let n = graph.vertex_count();
    let warm = {
        let _greedy = defender_obs::span!("greedy_seed");
        greedy::maximal_matching(graph)
    };
    let mut mate = vec![NIL; n];
    for v in graph.vertices() {
        if let Some(w) = warm.partner(v) {
            mate[v.index()] = w.index();
        }
    }
    let mut search = Search::new(graph, mate);
    {
        let _augment = defender_obs::span!("augment_phase");
        for v in 0..n {
            if search.mate[v] == NIL {
                defender_obs::counter!("matching.blossom.searches").incr();
                let end = search.find_augmenting_path(v);
                if end != NIL {
                    defender_obs::counter!("matching.blossom.augmentations").incr();
                    search.augment(end);
                }
            }
        }
    }
    let partner: Vec<Option<VertexId>> = search
        .mate
        .iter()
        .map(|&m| (m != NIL).then(|| VertexId::new(m)))
        .collect();
    Matching::from_partner_map(graph, partner)
}

/// The matching number `μ(G)`.
#[must_use]
pub fn matching_number(graph: &Graph) -> usize {
    maximum_matching(graph).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_graph::{generators, GraphBuilder};
    use defender_num::rng::StdRng;

    #[test]
    fn known_matching_numbers() {
        assert_eq!(matching_number(&generators::path(2)), 1);
        assert_eq!(matching_number(&generators::path(7)), 3);
        assert_eq!(matching_number(&generators::cycle(5)), 2);
        assert_eq!(matching_number(&generators::cycle(6)), 3);
        assert_eq!(matching_number(&generators::complete(6)), 3);
        assert_eq!(matching_number(&generators::complete(7)), 3);
        assert_eq!(matching_number(&generators::star(9)), 1);
        assert_eq!(matching_number(&generators::petersen()), 5);
        assert_eq!(matching_number(&generators::grid(4, 4)), 8);
    }

    #[test]
    fn blossom_contraction_is_exercised() {
        // Two triangles joined by a bridge: greedy can pick the bridge and
        // strand both triangles; maximum is 3.
        //   0-1-2-0  3-4-5-3  bridge 2-3
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        b.add_edge(3, 4).add_edge(4, 5).add_edge(3, 5);
        b.add_edge(2, 3);
        assert_eq!(matching_number(&b.build()), 3);
    }

    #[test]
    fn flower_graph() {
        // A blossom with a stem: odd cycle 1-2-3-4-5-1 plus stem 0-1.
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1);
        b.add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 4)
            .add_edge(4, 5)
            .add_edge(5, 1);
        assert_eq!(matching_number(&b.build()), 3);
    }

    #[test]
    fn empty_and_edgeless() {
        assert_eq!(matching_number(&GraphBuilder::new(0).build()), 0);
        assert_eq!(matching_number(&GraphBuilder::new(5).build()), 0);
    }

    #[test]
    fn result_is_valid_and_maximal() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..30 {
            let g = generators::gnp(14, 0.25, &mut rng);
            let m = maximum_matching(&g);
            assert!(m.is_maximal(&g), "maximum implies maximal");
        }
    }

    /// Cross-check against brute force on small random graphs.
    #[test]
    fn agrees_with_brute_force() {
        fn brute_force(g: &defender_graph::Graph) -> usize {
            let m = g.edge_count();
            let mut best = 0;
            for mask in 0u32..(1 << m) {
                let edges: Vec<defender_graph::EdgeId> = (0..m)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(defender_graph::EdgeId::new)
                    .collect();
                if Matching::from_edges(g, edges.clone()).is_ok() {
                    best = best.max(edges.len());
                }
            }
            best
        }
        let mut rng = StdRng::seed_from_u64(123);
        let mut tried = 0;
        while tried < 25 {
            let g = generators::gnp(7, 0.4, &mut rng);
            if g.edge_count() > 14 {
                continue;
            }
            tried += 1;
            assert_eq!(matching_number(&g), brute_force(&g), "graph: {g:?}");
        }
    }

    #[test]
    fn odd_components_bound() {
        // Tutte–Berge sanity: deficiency of a star is leaves - 1.
        for leaves in 1..6 {
            let g = generators::star(leaves);
            let exposed = g.vertex_count() - 2 * matching_number(&g);
            assert_eq!(exposed, leaves - 1);
        }
    }
}
