//! Linear-time matching machinery on trees (and forests).
//!
//! The companion paper \[8\] singles out trees as a family with specialized
//! linear-time equilibrium computation. On a tree the generic
//! Hopcroft–Karp/König route costs `O(m√n)`; here both the maximum
//! matching and the minimum vertex cover come out of one `O(n)`
//! leaf-to-root dynamic program, feeding `A_tuple` a partition without the
//! bipartite machinery.

use defender_graph::{properties, Graph, VertexId, VertexSet};

use crate::Matching;

/// Result of the tree DP: maximum matching + minimum vertex cover, which
/// certify each other (`|cover| = |matching|` by König on bipartite trees).
#[derive(Clone, Debug)]
pub struct TreeCover {
    /// A maximum matching of the forest.
    pub matching: Matching,
    /// A minimum vertex cover, sorted. Every cover vertex is matched and
    /// its partner lies outside the cover.
    pub cover: VertexSet,
}

/// Computes a maximum matching and minimum vertex cover of a forest in
/// `O(n)` by greedy leaf matching.
///
/// Walking vertices in reverse BFS order from each root, an unmatched
/// vertex whose parent is also unmatched grabs the parent edge; taking the
/// *parent* of every matched-from-below vertex yields the cover. Greedy
/// leaf matching is maximum on forests, and each matched edge contributes
/// its parent endpoint to the cover, giving `|cover| = |matching|` — a
/// König certificate of minimality.
///
/// Returns `None` if `graph` contains a cycle (not a forest).
///
/// # Examples
///
/// ```
/// use defender_graph::generators;
/// use defender_matching::tree::tree_cover;
///
/// let path = generators::path(5);
/// let tc = tree_cover(&path).expect("paths are trees");
/// assert_eq!(tc.matching.len(), 2);
/// assert_eq!(tc.cover.len(), 2);
/// ```
#[must_use]
pub fn tree_cover(graph: &Graph) -> Option<TreeCover> {
    let n = graph.vertex_count();
    let (_, component_count) = defender_graph::traversal::components(graph);
    if graph.edge_count() + component_count != n {
        return None; // |E| = n − c characterizes forests
    }

    // Parents via BFS from every root; process vertices children-first.
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for root in graph.vertices() {
        if seen[root.index()] {
            continue;
        }
        seen[root.index()] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for w in graph.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    parent[w.index()] = Some(v);
                    queue.push_back(w);
                }
            }
        }
    }

    let mut matched_to: Vec<Option<VertexId>> = vec![None; n];
    let mut in_cover = vec![false; n];
    for &v in order.iter().rev() {
        if matched_to[v.index()].is_some() {
            continue;
        }
        if let Some(p) = parent[v.index()] {
            if matched_to[p.index()].is_none() {
                matched_to[v.index()] = Some(p);
                matched_to[p.index()] = Some(v);
                in_cover[p.index()] = true;
            }
        }
    }

    let matching = Matching::from_partner_map(graph, matched_to);
    let cover: VertexSet = graph.vertices().filter(|v| in_cover[v.index()]).collect();
    debug_assert_eq!(cover.len(), matching.len(), "König certificate");
    Some(TreeCover { matching, cover })
}

/// Whether `graph` is a forest (every component a tree).
#[must_use]
pub fn is_forest(graph: &Graph) -> bool {
    let (_, c) = defender_graph::traversal::components(graph);
    graph.edge_count() + c == graph.vertex_count()
}

/// Whether `graph` is a tree (connected forest).
#[must_use]
pub fn is_tree(graph: &Graph) -> bool {
    is_forest(graph) && properties::is_connected(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_graph::{generators, vertex_cover, GraphBuilder};
    use defender_num::rng::StdRng;

    #[test]
    fn classifications() {
        assert!(is_tree(&generators::path(5)));
        assert!(is_tree(&generators::star(4)));
        assert!(!is_tree(&generators::cycle(4)));
        assert!(!is_forest(&generators::cycle(4)));
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(2, 3);
        assert!(is_forest(&b.build()));
        assert!(!is_tree(&b.build()));
    }

    #[test]
    fn rejects_cycles() {
        assert!(tree_cover(&generators::cycle(6)).is_none());
        assert!(tree_cover(&generators::petersen()).is_none());
    }

    #[test]
    fn path_and_star_values() {
        let tc = tree_cover(&generators::path(7)).unwrap();
        assert_eq!(tc.matching.len(), 3);
        assert_eq!(tc.cover.len(), 3);
        let tc = tree_cover(&generators::star(6)).unwrap();
        assert_eq!(tc.matching.len(), 1);
        assert_eq!(tc.cover, vec![VertexId::new(0)], "the hub covers a star");
    }

    #[test]
    fn agrees_with_general_machinery_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(88);
        for n in [2usize, 3, 5, 10, 25, 60] {
            let g = generators::random_tree(n, &mut rng);
            let tc = tree_cover(&g).unwrap();
            // Matching validity is enforced by construction; maximality vs
            // blossom, cover minimality vs König duality.
            assert_eq!(
                tc.matching.len(),
                crate::maximum_matching(&g).len(),
                "n = {n}"
            );
            assert!(vertex_cover::is_vertex_cover(&g, &tc.cover), "n = {n}");
            assert_eq!(tc.cover.len(), tc.matching.len(), "n = {n}");
        }
    }

    #[test]
    fn cover_vertices_matched_outside_cover() {
        let mut rng = StdRng::seed_from_u64(89);
        for _ in 0..10 {
            let g = generators::random_tree(20, &mut rng);
            let tc = tree_cover(&g).unwrap();
            for &v in &tc.cover {
                let p = tc.matching.partner(v).expect("cover vertices are matched");
                assert!(tc.cover.binary_search(&p).is_err());
            }
        }
    }

    #[test]
    fn forest_with_isolated_vertices() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1).add_edge(2, 3);
        let g = b.build();
        let tc = tree_cover(&g).unwrap();
        assert_eq!(tc.matching.len(), 2);
        assert_eq!(tc.cover.len(), 2);
    }

    #[test]
    fn single_vertex_tree() {
        let g = GraphBuilder::new(1).build();
        let tc = tree_cover(&g).unwrap();
        assert!(tc.matching.is_empty());
        assert!(tc.cover.is_empty());
    }
}
