//! Matching-theory substrate for the Tuple model.
//!
//! The equilibrium constructions of the paper reduce to classical matching
//! computations:
//!
//! - the matching-NE algorithm `A` of \[7\] matches the vertex cover `VC`
//!   into the independent set `IS` — bipartite maximum matching
//!   ([`hopcroft_karp()`](hopcroft_karp::hopcroft_karp));
//! - Theorem 5.1 needs a minimum vertex cover of a bipartite graph —
//!   König's theorem ([`koenig_vertex_cover`]);
//! - Theorem 3.1 / Corollary 3.2 need minimum edge covers of arbitrary
//!   graphs — Gallai's identity `ρ(G) = n − μ(G)` on top of a general
//!   maximum matching ([`maximum_matching`], Edmonds' blossom algorithm);
//! - the corrected expander condition of Theorem 2.2 is a Hall condition
//!   ([`hall`]).
//!
//! # Examples
//!
//! ```
//! use defender_graph::generators;
//! use defender_matching::{maximum_matching, minimum_edge_cover};
//!
//! let g = generators::petersen();
//! assert_eq!(maximum_matching(&g).len(), 5); // perfect matching
//! assert_eq!(minimum_edge_cover(&g).unwrap().len(), 5); // ρ = n − μ
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod blossom;
mod matching;

pub mod edge_cover;
pub mod greedy;
pub mod hall;
pub mod hopcroft_karp;
pub mod koenig;
pub mod tree;

pub use blossom::{matching_number, maximum_matching};
pub use edge_cover::minimum_edge_cover;
pub use hopcroft_karp::hopcroft_karp;
pub use koenig::koenig_vertex_cover;
pub use matching::{Matching, MatchingError};
