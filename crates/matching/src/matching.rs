//! The [`Matching`] type: a set of pairwise vertex-disjoint edges.

use core::fmt;

use defender_graph::{EdgeId, Graph, VertexId};

/// Errors from [`Matching::from_edges`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatchingError {
    /// Two supplied edges share the given vertex.
    SharedVertex {
        /// The vertex on two of the supplied edges.
        vertex: VertexId,
    },
    /// An edge id was out of range for the graph.
    UnknownEdge {
        /// The offending index.
        index: usize,
    },
}

impl fmt::Display for MatchingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchingError::SharedVertex { vertex } => {
                write!(f, "edges share vertex {vertex}; not a matching")
            }
            MatchingError::UnknownEdge { index } => {
                write!(f, "edge index {index} out of range")
            }
        }
    }
}

impl std::error::Error for MatchingError {}

/// A matching of a graph: edges no two of which share a vertex.
///
/// Stores both the edge set and the induced partner map, so partner lookup
/// is `O(1)`.
///
/// # Examples
///
/// ```
/// use defender_graph::{generators, EdgeId};
/// use defender_matching::Matching;
///
/// let g = generators::path(4); // edges (0,1), (1,2), (2,3)
/// let m = Matching::from_edges(&g, vec![EdgeId::new(0), EdgeId::new(2)])?;
/// assert_eq!(m.len(), 2);
/// assert!(m.is_perfect(&g));
/// # Ok::<(), defender_matching::MatchingError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Matching {
    edges: Vec<EdgeId>,
    partner: Vec<Option<VertexId>>,
}

impl Matching {
    /// The empty matching of a graph with `vertex_count` vertices.
    #[must_use]
    pub fn empty(vertex_count: usize) -> Matching {
        Matching {
            edges: Vec::new(),
            partner: vec![None; vertex_count],
        }
    }

    /// Builds a matching from explicit edges, validating disjointness.
    ///
    /// # Errors
    ///
    /// Returns [`MatchingError::SharedVertex`] if two edges collide and
    /// [`MatchingError::UnknownEdge`] for out-of-range ids.
    pub fn from_edges(graph: &Graph, mut edges: Vec<EdgeId>) -> Result<Matching, MatchingError> {
        edges.sort_unstable();
        edges.dedup();
        let mut partner: Vec<Option<VertexId>> = vec![None; graph.vertex_count()];
        for &e in &edges {
            if e.index() >= graph.edge_count() {
                return Err(MatchingError::UnknownEdge { index: e.index() });
            }
            let ep = graph.endpoints(e);
            for (a, b) in [(ep.u(), ep.v()), (ep.v(), ep.u())] {
                if partner[a.index()].is_some() {
                    return Err(MatchingError::SharedVertex { vertex: a });
                }
                partner[a.index()] = Some(b);
            }
        }
        Ok(Matching { edges, partner })
    }

    /// Builds from a partner map (used internally by the algorithms).
    ///
    /// # Panics
    ///
    /// Panics if the map is not symmetric or references a missing edge.
    pub(crate) fn from_partner_map(graph: &Graph, partner: Vec<Option<VertexId>>) -> Matching {
        let mut edges = Vec::new();
        for v in graph.vertices() {
            if let Some(w) = partner[v.index()] {
                assert_eq!(partner[w.index()], Some(v), "partner map must be symmetric");
                if v < w {
                    let e = graph
                        .find_edge(v, w)
                        // lint: allow(panic) matched pairs are edges of the graph
                        .expect("matched pair must be an edge of the graph");
                    edges.push(e);
                }
            }
        }
        edges.sort_unstable();
        Matching { edges, partner }
    }

    /// Number of matched edges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the matching has no edges.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The matched edges, sorted by id.
    #[must_use]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// The partner of `v`, if matched.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn partner(&self, v: VertexId) -> Option<VertexId> {
        self.partner[v.index()]
    }

    /// Whether `v` is matched.
    #[must_use]
    pub fn is_matched(&self, v: VertexId) -> bool {
        self.partner(v).is_some()
    }

    /// Whether every vertex of `set` is matched (the paper's "`S` is
    /// matched in `M`").
    #[must_use]
    pub fn saturates(&self, set: &[VertexId]) -> bool {
        set.iter().all(|&v| self.is_matched(v))
    }

    /// Whether the matching is perfect for `graph` (every vertex matched).
    #[must_use]
    pub fn is_perfect(&self, graph: &Graph) -> bool {
        graph.vertices().all(|v| self.is_matched(v))
    }

    /// Whether no edge of `graph` can be added (maximality).
    #[must_use]
    pub fn is_maximal(&self, graph: &Graph) -> bool {
        graph.edges().all(|e| {
            let ep = graph.endpoints(e);
            self.is_matched(ep.u()) || self.is_matched(ep.v())
        })
    }

    /// The matched vertices, sorted.
    #[must_use]
    pub fn matched_vertices(&self) -> Vec<VertexId> {
        (0..self.partner.len())
            .filter(|&i| self.partner[i].is_some())
            .map(VertexId::new)
            .collect()
    }

    /// The unmatched (exposed) vertices, sorted.
    #[must_use]
    pub fn exposed_vertices(&self) -> Vec<VertexId> {
        (0..self.partner.len())
            .filter(|&i| self.partner[i].is_none())
            .map(VertexId::new)
            .collect()
    }
}

impl fmt::Debug for Matching {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Matching")
            .field("size", &self.len())
            .field("edges", &self.edges)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_graph::generators;

    #[test]
    fn from_edges_validates() {
        let g = generators::path(4);
        assert!(Matching::from_edges(&g, vec![EdgeId::new(0), EdgeId::new(2)]).is_ok());
        let err = Matching::from_edges(&g, vec![EdgeId::new(0), EdgeId::new(1)]).unwrap_err();
        assert_eq!(
            err,
            MatchingError::SharedVertex {
                vertex: VertexId::new(1)
            }
        );
        let err = Matching::from_edges(&g, vec![EdgeId::new(9)]).unwrap_err();
        assert_eq!(err, MatchingError::UnknownEdge { index: 9 });
    }

    #[test]
    fn duplicate_edges_tolerated() {
        let g = generators::path(2);
        let m = Matching::from_edges(&g, vec![EdgeId::new(0), EdgeId::new(0)]).unwrap();
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn partner_lookup() {
        let g = generators::path(4);
        let m = Matching::from_edges(&g, vec![EdgeId::new(1)]).unwrap();
        assert_eq!(m.partner(VertexId::new(1)), Some(VertexId::new(2)));
        assert_eq!(m.partner(VertexId::new(2)), Some(VertexId::new(1)));
        assert_eq!(m.partner(VertexId::new(0)), None);
    }

    #[test]
    fn saturation_and_perfection() {
        let g = generators::path(4);
        let m = Matching::from_edges(&g, vec![EdgeId::new(0), EdgeId::new(2)]).unwrap();
        assert!(m.is_perfect(&g));
        assert!(m.saturates(&[VertexId::new(0), VertexId::new(3)]));
        let partial = Matching::from_edges(&g, vec![EdgeId::new(0)]).unwrap();
        assert!(!partial.is_perfect(&g));
        assert!(!partial.saturates(&[VertexId::new(2)]));
    }

    #[test]
    fn maximality() {
        let g = generators::path(5);
        let mid = Matching::from_edges(&g, vec![EdgeId::new(1), EdgeId::new(3)]).unwrap();
        assert!(mid.is_maximal(&g));
        let bad = Matching::from_edges(&g, vec![EdgeId::new(0)]).unwrap();
        assert!(!bad.is_maximal(&g));
    }

    #[test]
    fn vertex_listings() {
        let g = generators::path(4);
        let m = Matching::from_edges(&g, vec![EdgeId::new(0)]).unwrap();
        assert_eq!(
            m.matched_vertices(),
            vec![VertexId::new(0), VertexId::new(1)]
        );
        assert_eq!(
            m.exposed_vertices(),
            vec![VertexId::new(2), VertexId::new(3)]
        );
    }

    #[test]
    fn empty_matching() {
        let m = Matching::empty(3);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.exposed_vertices().len(), 3);
    }

    #[test]
    fn error_display() {
        let err = MatchingError::SharedVertex {
            vertex: VertexId::new(2),
        };
        assert!(err.to_string().contains("v2"));
        assert!(MatchingError::UnknownEdge { index: 1 }
            .to_string()
            .contains('1'));
    }
}
