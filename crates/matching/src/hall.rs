//! Hall-condition checks: the corrected expander condition of Theorem 2.2.
//!
//! DESIGN.md §5.1: the matching-NE characterization needs `VC` to expand
//! *into* `IS = V \ VC`, i.e. `|X| ≤ |Neigh_G(X) ∩ IS|` for every
//! `X ⊆ VC`. By Hall's theorem this holds iff `VC` can be matched into
//! `IS`, which Hopcroft–Karp decides in `O(m√n)` — no subset enumeration.

use std::collections::VecDeque;

use defender_graph::{vertex_cover, Graph, VertexId, VertexSet};

use crate::{hopcroft_karp, Matching};

/// Result of [`matching_into_complement`].
#[derive(Clone, Debug)]
pub enum HallOutcome {
    /// `set` can be matched into its complement; the matching saturates
    /// `set`.
    Saturated(Matching),
    /// Hall's condition fails; the violator `X ⊆ set` satisfies
    /// `|Neigh(X) \ set| < |X|`.
    Deficient {
        /// A maximum (unsaturating) matching.
        matching: Matching,
        /// A Hall violator, sorted.
        violator: VertexSet,
    },
}

impl HallOutcome {
    /// The underlying matching, saturated or not.
    #[must_use]
    pub fn matching(&self) -> &Matching {
        match self {
            HallOutcome::Saturated(m) | HallOutcome::Deficient { matching: m, .. } => m,
        }
    }

    /// Whether the set was fully matched into its complement.
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        matches!(self, HallOutcome::Saturated(_))
    }
}

/// Tries to match every vertex of `set` to a *distinct* neighbor outside
/// `set`.
///
/// On failure, extracts a Hall violator: the `set`-side vertices reachable
/// by alternating paths from an unmatched `set` vertex form an `X` whose
/// outside neighborhood is smaller than `X`.
///
/// # Examples
///
/// ```
/// use defender_graph::{generators, VertexId};
/// use defender_matching::hall::{matching_into_complement, HallOutcome};
///
/// // K3 with set = {v1, v2}: only one outside vertex exists.
/// let g = generators::complete(3);
/// let set = vec![VertexId::new(1), VertexId::new(2)];
/// let outcome = matching_into_complement(&g, &set);
/// assert!(!outcome.is_saturated());
/// ```
#[must_use]
pub fn matching_into_complement(graph: &Graph, set: &[VertexId]) -> HallOutcome {
    let complement = vertex_cover::complement(graph, set);
    let matching = hopcroft_karp(graph, set, &complement);
    if matching.saturates(set) {
        return HallOutcome::Saturated(matching);
    }

    // Alternating BFS from unmatched `set` vertices over cross edges:
    // set -> outside via non-matching edges, outside -> set via matching.
    let n = graph.vertex_count();
    let mut in_set = vec![false; n];
    for &v in set {
        in_set[v.index()] = true;
    }
    let mut reached = vec![false; n];
    let mut queue: VecDeque<VertexId> = set
        .iter()
        .copied()
        .filter(|&v| !matching.is_matched(v))
        .collect();
    for &v in &queue {
        reached[v.index()] = true;
    }
    while let Some(v) = queue.pop_front() {
        if in_set[v.index()] {
            for w in graph.neighbors(v) {
                if !in_set[w.index()] && !reached[w.index()] && matching.partner(v) != Some(w) {
                    reached[w.index()] = true;
                    queue.push_back(w);
                }
            }
        } else if let Some(w) = matching.partner(v) {
            if !reached[w.index()] {
                reached[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    let violator: VertexSet = set
        .iter()
        .copied()
        .filter(|&v| reached[v.index()])
        .collect();
    HallOutcome::Deficient { matching, violator }
}

/// The corrected `S`-expander predicate: `S` expands into `V \ S`.
///
/// Equivalent to [`matching_into_complement`] saturating, by Hall.
#[must_use]
pub fn is_expander_into_complement(graph: &Graph, set: &[VertexId]) -> bool {
    matching_into_complement(graph, set).is_saturated()
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_graph::{expander, generators};
    use defender_num::rng::StdRng;

    #[test]
    fn k3_pin_from_design_md() {
        let g = generators::complete(3);
        let set = vec![VertexId::new(1), VertexId::new(2)];
        let outcome = matching_into_complement(&g, &set);
        let HallOutcome::Deficient { violator, matching } = outcome else {
            panic!("K3 must be deficient");
        };
        assert_eq!(matching.len(), 1);
        // The violator's outside neighborhood is strictly smaller.
        let outside: Vec<VertexId> = g
            .neighborhood(&violator)
            .into_iter()
            .filter(|w| !set.contains(w))
            .collect();
        assert!(outside.len() < violator.len());
    }

    #[test]
    fn star_center_saturates() {
        let g = generators::star(5);
        assert!(is_expander_into_complement(&g, &[VertexId::new(0)]));
    }

    #[test]
    fn star_leaves_do_not_saturate() {
        let g = generators::star(5);
        let leaves: Vec<VertexId> = (1..=5).map(VertexId::new).collect();
        let outcome = matching_into_complement(&g, &leaves);
        assert!(!outcome.is_saturated());
        assert_eq!(outcome.matching().len(), 1, "only the hub is outside");
    }

    #[test]
    fn agrees_with_exact_brute_force() {
        let mut rng = StdRng::seed_from_u64(40);
        for trial in 0..40 {
            let g = generators::gnp_connected(10, 0.2, &mut rng);
            // Take an arbitrary half of the vertices as the candidate set.
            let set: Vec<VertexId> = g
                .vertices()
                .filter(|v| v.index() % 2 == trial % 2)
                .collect();
            let fast = is_expander_into_complement(&g, &set);
            let slow = expander::is_expander_into_complement_exact(&g, &set);
            assert_eq!(fast, slow, "trial {trial}: {g:?}, set {set:?}");
        }
    }

    #[test]
    fn violator_is_certified() {
        let mut rng = StdRng::seed_from_u64(50);
        let mut deficient_seen = 0;
        for _ in 0..60 {
            let g = generators::gnp_connected(12, 0.15, &mut rng);
            let set: Vec<VertexId> = g.vertices().filter(|v| v.index() < 6).collect();
            if let HallOutcome::Deficient { violator, .. } = matching_into_complement(&g, &set) {
                deficient_seen += 1;
                assert!(!violator.is_empty());
                let in_set: Vec<bool> = {
                    let mut m = vec![false; g.vertex_count()];
                    for &v in &set {
                        m[v.index()] = true;
                    }
                    m
                };
                let outside = g
                    .neighborhood(&violator)
                    .into_iter()
                    .filter(|w| !in_set[w.index()])
                    .count();
                assert!(outside < violator.len(), "violator must certify deficiency");
            }
        }
        assert!(
            deficient_seen > 0,
            "sparse graphs should produce deficient cases"
        );
    }

    #[test]
    fn empty_set_saturates_trivially() {
        let g = generators::path(3);
        assert!(is_expander_into_complement(&g, &[]));
    }
}
