//! Property-based tests for the matching substrate, driven by the
//! vendored seeded PRNG (offline build: no external frameworks).

use defender_graph::{edge_cover, generators, vertex_cover, Graph, VertexId};
use defender_matching::{
    greedy, hall, hopcroft_karp, koenig, maximum_matching, minimum_edge_cover, tree,
};
use defender_num::rng::{Rng, StdRng};

const CASES: usize = 250;

fn random_graph<R: Rng + ?Sized>(rng: &mut R) -> Graph {
    let n = rng.gen_range(2..15);
    let p = rng.gen_range(5..61) as f64 / 100.0;
    generators::gnp(n, p, rng)
}

fn random_connected<R: Rng + ?Sized>(rng: &mut R) -> Graph {
    let n = rng.gen_range(2..15);
    let p = rng.gen_range(5..41) as f64 / 100.0;
    generators::gnp_connected(n, p, rng)
}

/// A random bipartite graph plus its left-side size.
fn random_bipartite<R: Rng + ?Sized>(rng: &mut R) -> (Graph, usize) {
    let a = rng.gen_range(2..8);
    let b = rng.gen_range(2..9);
    let p = rng.gen_range(10..61) as f64 / 100.0;
    (generators::random_bipartite(a, b, p, rng), a)
}

fn random_tree<R: Rng + ?Sized>(rng: &mut R) -> Graph {
    let n = rng.gen_range(1..41);
    generators::random_tree(n, rng)
}

fn for_each_case(seed: u64, mut body: impl FnMut(&mut StdRng)) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..CASES {
        body(&mut rng);
    }
}

#[test]
fn greedy_is_half_of_maximum() {
    for_each_case(0xB1, |rng| {
        let g = random_graph(rng);
        let greedy_len = greedy::maximal_matching(&g).len();
        let max_len = maximum_matching(&g).len();
        assert!(greedy_len <= max_len);
        assert!(2 * greedy_len >= max_len);
    });
}

#[test]
fn maximum_matching_admits_no_augmenting_structure() {
    for_each_case(0xB2, |rng| {
        let g = random_graph(rng);
        // Necessary conditions for maximality: valid (by construction) and
        // maximal; full optimality is cross-checked elsewhere by brute
        // force and here against König on bipartite instances.
        let m = maximum_matching(&g);
        assert!(m.is_maximal(&g));
        assert!(2 * m.len() <= g.vertex_count());
    });
}

#[test]
fn koenig_duality() {
    for_each_case(0xB3, |rng| {
        let (g, a) = random_bipartite(rng);
        let left: Vec<VertexId> = (0..a).map(VertexId::new).collect();
        let right: Vec<VertexId> = (a..g.vertex_count()).map(VertexId::new).collect();
        let k = koenig::koenig_vertex_cover(&g, &left, &right);
        assert!(vertex_cover::is_vertex_cover(&g, &k.cover));
        assert_eq!(k.cover.len(), k.matching.len(), "König: τ = μ");
        // Weak duality against the general matcher, strong via the cover.
        assert_eq!(k.matching.len(), maximum_matching(&g).len());
    });
}

#[test]
fn hk_equals_blossom_on_bipartite() {
    for_each_case(0xB4, |rng| {
        let (g, a) = random_bipartite(rng);
        let left: Vec<VertexId> = (0..a).map(VertexId::new).collect();
        let right: Vec<VertexId> = (a..g.vertex_count()).map(VertexId::new).collect();
        assert_eq!(
            hopcroft_karp(&g, &left, &right).len(),
            maximum_matching(&g).len()
        );
    });
}

#[test]
fn gallai_identity() {
    for_each_case(0xB5, |rng| {
        let g = random_connected(rng);
        let mu = maximum_matching(&g).len();
        let cover = minimum_edge_cover(&g).expect("connected graphs have covers");
        assert!(edge_cover::is_edge_cover(&g, &cover));
        assert_eq!(cover.len(), g.vertex_count() - mu);
    });
}

#[test]
fn hall_outcome_is_consistent() {
    for_each_case(0xB6, |rng| {
        let g = random_connected(rng);
        let set: Vec<VertexId> = g.vertices().filter(|v| v.index() % 2 == 0).collect();
        match hall::matching_into_complement(&g, &set) {
            hall::HallOutcome::Saturated(m) => {
                assert!(m.saturates(&set));
            }
            hall::HallOutcome::Deficient { violator, matching } => {
                assert!(!matching.saturates(&set));
                assert!(!violator.is_empty());
                // The violator certifies the deficiency.
                let mut in_set = vec![false; g.vertex_count()];
                for &v in &set {
                    in_set[v.index()] = true;
                }
                let outside = g
                    .neighborhood(&violator)
                    .into_iter()
                    .filter(|w| !in_set[w.index()])
                    .count();
                assert!(outside < violator.len());
            }
        }
    });
}

#[test]
fn tree_cover_agrees_with_general_machinery() {
    for_each_case(0xB7, |rng| {
        let g = random_tree(rng);
        let tc = tree::tree_cover(&g).expect("trees are forests");
        assert_eq!(tc.matching.len(), maximum_matching(&g).len());
        assert!(vertex_cover::is_vertex_cover(&g, &tc.cover));
        assert_eq!(tc.cover.len(), tc.matching.len());
        // The complement is independent (König on trees).
        let is = vertex_cover::complement(&g, &tc.cover);
        assert!(defender_graph::independent_set::is_independent_set(&g, &is));
    });
}

#[test]
fn matched_edges_are_pairwise_disjoint() {
    for_each_case(0xB8, |rng| {
        let g = random_graph(rng);
        let m = maximum_matching(&g);
        let mut seen = vec![false; g.vertex_count()];
        for &e in m.edges() {
            let ep = g.endpoints(e);
            assert!(!seen[ep.u().index()] && !seen[ep.v().index()]);
            seen[ep.u().index()] = true;
            seen[ep.v().index()] = true;
        }
    });
}
