//! Property-based tests for the matching substrate.

use defender_graph::{edge_cover, generators, vertex_cover, Graph, VertexId};
use defender_matching::{
    greedy, hall, hopcroft_karp, koenig, maximum_matching, minimum_edge_cover, tree,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_graph() -> impl Strategy<Value = Graph> {
    (2usize..=14, 0u64..2_000, 5u32..=60).prop_map(|(n, seed, pct)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::gnp(n, f64::from(pct) / 100.0, &mut rng)
    })
}

fn random_connected() -> impl Strategy<Value = Graph> {
    (2usize..=14, 0u64..2_000, 5u32..=40).prop_map(|(n, seed, pct)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::gnp_connected(n, f64::from(pct) / 100.0, &mut rng)
    })
}

fn random_bipartite() -> impl Strategy<Value = (Graph, usize)> {
    (2usize..=7, 2usize..=8, 0u64..2_000, 10u32..=60).prop_map(|(a, b, seed, pct)| {
        let mut rng = StdRng::seed_from_u64(seed);
        (generators::random_bipartite(a, b, f64::from(pct) / 100.0, &mut rng), a)
    })
}

fn random_tree() -> impl Strategy<Value = Graph> {
    (1usize..=40, 0u64..2_000).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::random_tree(n, &mut rng)
    })
}

proptest! {
    #[test]
    fn greedy_is_half_of_maximum(g in random_graph()) {
        let greedy_len = greedy::maximal_matching(&g).len();
        let max_len = maximum_matching(&g).len();
        prop_assert!(greedy_len <= max_len);
        prop_assert!(2 * greedy_len >= max_len);
    }

    #[test]
    fn maximum_matching_admits_no_augmenting_structure(g in random_graph()) {
        // Necessary conditions for maximality: valid (by construction) and
        // maximal; full optimality is cross-checked elsewhere by brute
        // force and here against König on bipartite instances.
        let m = maximum_matching(&g);
        prop_assert!(m.is_maximal(&g));
        prop_assert!(2 * m.len() <= g.vertex_count());
    }

    #[test]
    fn koenig_duality((g, a) in random_bipartite()) {
        let left: Vec<VertexId> = (0..a).map(VertexId::new).collect();
        let right: Vec<VertexId> = (a..g.vertex_count()).map(VertexId::new).collect();
        let k = koenig::koenig_vertex_cover(&g, &left, &right);
        prop_assert!(vertex_cover::is_vertex_cover(&g, &k.cover));
        prop_assert_eq!(k.cover.len(), k.matching.len(), "König: τ = μ");
        // Weak duality against the general matcher, strong via the cover.
        prop_assert_eq!(k.matching.len(), maximum_matching(&g).len());
    }

    #[test]
    fn hk_equals_blossom_on_bipartite((g, a) in random_bipartite()) {
        let left: Vec<VertexId> = (0..a).map(VertexId::new).collect();
        let right: Vec<VertexId> = (a..g.vertex_count()).map(VertexId::new).collect();
        prop_assert_eq!(
            hopcroft_karp(&g, &left, &right).len(),
            maximum_matching(&g).len()
        );
    }

    #[test]
    fn gallai_identity(g in random_connected()) {
        let mu = maximum_matching(&g).len();
        let cover = minimum_edge_cover(&g).expect("connected graphs have covers");
        prop_assert!(edge_cover::is_edge_cover(&g, &cover));
        prop_assert_eq!(cover.len(), g.vertex_count() - mu);
    }

    #[test]
    fn hall_outcome_is_consistent(g in random_connected()) {
        let set: Vec<VertexId> = g.vertices().filter(|v| v.index() % 2 == 0).collect();
        match hall::matching_into_complement(&g, &set) {
            hall::HallOutcome::Saturated(m) => {
                prop_assert!(m.saturates(&set));
            }
            hall::HallOutcome::Deficient { violator, matching } => {
                prop_assert!(!matching.saturates(&set));
                prop_assert!(!violator.is_empty());
                // The violator certifies the deficiency.
                let mut in_set = vec![false; g.vertex_count()];
                for &v in &set {
                    in_set[v.index()] = true;
                }
                let outside = g
                    .neighborhood(&violator)
                    .into_iter()
                    .filter(|w| !in_set[w.index()])
                    .count();
                prop_assert!(outside < violator.len());
            }
        }
    }

    #[test]
    fn tree_cover_agrees_with_general_machinery(g in random_tree()) {
        let tc = tree::tree_cover(&g).expect("trees are forests");
        prop_assert_eq!(tc.matching.len(), maximum_matching(&g).len());
        prop_assert!(vertex_cover::is_vertex_cover(&g, &tc.cover));
        prop_assert_eq!(tc.cover.len(), tc.matching.len());
        // The complement is independent (König on trees).
        let is = vertex_cover::complement(&g, &tc.cover);
        prop_assert!(defender_graph::independent_set::is_independent_set(&g, &is));
    }

    #[test]
    fn matched_edges_are_pairwise_disjoint(g in random_graph()) {
        let m = maximum_matching(&g);
        let mut seen = vec![false; g.vertex_count()];
        for &e in m.edges() {
            let ep = g.endpoints(e);
            prop_assert!(!seen[ep.u().index()] && !seen[ep.v().index()]);
            seen[ep.u().index()] = true;
            seen[ep.v().index()] = true;
        }
    }
}
