//! Exact linear programming over rationals, and zero-sum game solving.
//!
//! The constructive theory of the paper covers bipartite graphs
//! (Theorem 5.1) and, via the covering extension, perfect-matching graphs.
//! For *arbitrary* graphs the single-attacker Tuple game is still a finite
//! two-player constant-sum game, so its exact value and optimal mixed
//! strategies come out of one linear program. This crate supplies the
//! machinery: a tableau [`simplex`] with Bland's anti-cycling rule over
//! [`defender_num::Ratio`] (no floating point anywhere), and the classical
//! LP formulation of matrix games ([`zero_sum`]).
//!
//! # Examples
//!
//! Matching pennies has value 0 and uniform optimal strategies:
//!
//! ```
//! use defender_lp::zero_sum::solve_zero_sum;
//! use defender_num::Ratio;
//!
//! let m = vec![
//!     vec![Ratio::from(1), Ratio::from(-1)],
//!     vec![Ratio::from(-1), Ratio::from(1)],
//! ];
//! let solution = solve_zero_sum(&m).unwrap();
//! assert_eq!(solution.value, Ratio::ZERO);
//! assert_eq!(solution.row_strategy, vec![Ratio::new(1, 2), Ratio::new(1, 2)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod linsolve;
pub mod simplex;
pub mod zero_sum;

pub use linsolve::{determinant, solve_linear};
pub use simplex::{maximize, solve_with_basis, LpError, LpSolution, DEFAULT_PIVOT_LIMIT};
pub use zero_sum::{solve_zero_sum, solve_zero_sum_hinted, ZeroSumSolution};
