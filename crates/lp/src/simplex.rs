//! Tableau simplex with Bland's rule, in exact rational arithmetic.
//!
//! Solves the *packing form*
//!
//! ```text
//! maximize    c · x
//! subject to  A x ≤ b,   x ≥ 0,   b ≥ 0
//! ```
//!
//! which is all the zero-sum reduction needs (the all-slack basis is
//! feasible because `b ≥ 0`, so no phase-one is required). Bland's
//! smallest-index pivoting rule guarantees termination even on degenerate
//! tableaus, and exact rationals make the optimum — and the dual prices —
//! bit-for-bit reproducible.

use core::fmt;

use defender_num::{row_eliminate, row_scale_div, Ratio};

/// Errors from [`maximize`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpError {
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// A right-hand side was negative (packing form requires `b ≥ 0`).
    NegativeRhs {
        /// The offending constraint row.
        row: usize,
    },
    /// Matrix shapes disagree.
    ShapeMismatch {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::NegativeRhs { row } => {
                write!(f, "constraint {row} has a negative right-hand side")
            }
            LpError::ShapeMismatch { reason } => write!(f, "shape mismatch: {reason}"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution of the packing LP.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// The optimal objective value `c · x*`.
    pub objective: Ratio,
    /// The optimal primal point `x*` (length = number of variables).
    pub primal: Vec<Ratio>,
    /// The optimal dual prices `y*` (length = number of constraints);
    /// `y*` solves the dual `min b·y, Aᵀy ≥ c, y ≥ 0`.
    pub dual: Vec<Ratio>,
}

/// Solves `max c·x  s.t.  A x ≤ b, x ≥ 0` exactly.
///
/// # Errors
///
/// - [`LpError::ShapeMismatch`] for ragged input;
/// - [`LpError::NegativeRhs`] if any `b_i < 0`;
/// - [`LpError::Unbounded`] when no optimum exists.
pub fn maximize(c: &[Ratio], a: &[Vec<Ratio>], b: &[Ratio]) -> Result<LpSolution, LpError> {
    let n = c.len();
    let m = a.len();
    if b.len() != m {
        return Err(LpError::ShapeMismatch {
            reason: format!("{m} rows but {} rhs entries", b.len()),
        });
    }
    for (i, row) in a.iter().enumerate() {
        if row.len() != n {
            return Err(LpError::ShapeMismatch {
                reason: format!("row {i} has {} coefficients, expected {n}", row.len()),
            });
        }
    }
    if let Some(row) = b.iter().position(|&bi| bi < Ratio::ZERO) {
        return Err(LpError::NegativeRhs { row });
    }

    let _span = defender_obs::span!("simplex");
    defender_obs::counter!("lp.simplex.calls").incr();
    defender_obs::histogram!("lp.simplex.constraints").record(m as u64);

    // Tableau: m constraint rows over columns [x .. | slacks .. | rhs],
    // plus a reduced-cost row (maximization: positive entry ⇒ improvable).
    let cols = n + m + 1;
    let mut tableau: Vec<Vec<Ratio>> = Vec::with_capacity(m + 1);
    for i in 0..m {
        let mut row = vec![Ratio::ZERO; cols];
        row[..n].copy_from_slice(&a[i]);
        row[n + i] = Ratio::ONE;
        row[cols - 1] = b[i];
        tableau.push(row);
    }
    let mut objective = vec![Ratio::ZERO; cols];
    objective[..n].copy_from_slice(c);
    tableau.push(objective);

    // basis[i]: the variable occupying constraint row i (starts at slacks).
    let mut basis: Vec<usize> = (n..n + m).collect();

    // Bland: entering variable = smallest column with positive reduced cost;
    // loop until no column can improve the objective (optimality).
    while let Some(entering) = (0..n + m).find(|&j| tableau[m][j] > Ratio::ZERO) {
        // Ratio test; Bland tie-break on the smallest basis variable.
        let mut leaving: Option<(usize, Ratio)> = None;
        for i in 0..m {
            let coeff = tableau[i][entering];
            if coeff > Ratio::ZERO {
                let ratio = tableau[i][cols - 1] / coeff;
                let better = match &leaving {
                    None => true,
                    Some((li, lr)) => ratio < *lr || (ratio == *lr && basis[i] < basis[*li]),
                };
                if better {
                    leaving = Some((i, ratio));
                }
            }
        }
        let Some((pivot_row, min_ratio)) = leaving else {
            return Err(LpError::Unbounded);
        };
        defender_obs::counter!("lp.simplex.pivots").incr();
        if min_ratio.is_zero() {
            // A zero ratio pivots without moving the solution point; Bland's
            // rule keeps these degenerate steps from cycling.
            defender_obs::counter!("lp.simplex.degenerate_pivots").incr();
        }

        // Pivot on (pivot_row, entering) with the deferred-reduction row
        // kernels: one gcd per updated element instead of two, and none at
        // all on the zero/integer fast paths.
        let pivot = tableau[pivot_row][entering];
        row_scale_div(&mut tableau[pivot_row], pivot);
        let pivot_values = tableau[pivot_row].clone();
        for (i, row) in tableau.iter_mut().enumerate() {
            if i == pivot_row {
                continue;
            }
            let factor = row[entering];
            if factor.is_zero() {
                continue;
            }
            row_eliminate(row, factor, &pivot_values);
        }
        basis[pivot_row] = entering;
    }

    // Read the solution.
    let mut primal = vec![Ratio::ZERO; n];
    for (i, &var) in basis.iter().enumerate() {
        if var < n {
            primal[var] = tableau[i][cols - 1];
        }
    }
    // Reduced cost of slack i at optimum is −y_i.
    let dual: Vec<Ratio> = (0..m).map(|i| -tableau[m][n + i]).collect();
    let objective = -tableau[m][cols - 1];
    Ok(LpSolution {
        objective,
        primal,
        dual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Ratio {
        Ratio::new(n, d)
    }

    #[test]
    fn textbook_two_variable_lp() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let solution = maximize(
            &[r(3, 1), r(5, 1)],
            &[
                vec![r(1, 1), r(0, 1)],
                vec![r(0, 1), r(2, 1)],
                vec![r(3, 1), r(2, 1)],
            ],
            &[r(4, 1), r(12, 1), r(18, 1)],
        )
        .unwrap();
        assert_eq!(solution.objective, r(36, 1));
        assert_eq!(solution.primal, vec![r(2, 1), r(6, 1)]);
        // Strong duality: b·y = 36.
        let b_dot_y =
            r(4, 1) * solution.dual[0] + r(12, 1) * solution.dual[1] + r(18, 1) * solution.dual[2];
        assert_eq!(b_dot_y, r(36, 1));
    }

    #[test]
    fn fractional_optimum() {
        // max x + y s.t. 2x + y ≤ 1, x + 2y ≤ 1 → x = y = 1/3, obj 2/3.
        let solution = maximize(
            &[r(1, 1), r(1, 1)],
            &[vec![r(2, 1), r(1, 1)], vec![r(1, 1), r(2, 1)]],
            &[r(1, 1), r(1, 1)],
        )
        .unwrap();
        assert_eq!(solution.objective, r(2, 3));
        assert_eq!(solution.primal, vec![r(1, 3), r(1, 3)]);
    }

    #[test]
    fn unbounded_detected() {
        // max x with no binding constraint on x.
        let err = maximize(&[r(1, 1), r(0, 1)], &[vec![r(0, 1), r(1, 1)]], &[r(1, 1)]).unwrap_err();
        assert_eq!(err, LpError::Unbounded);
    }

    #[test]
    fn zero_objective_is_fine() {
        let solution = maximize(&[r(0, 1)], &[vec![r(1, 1)]], &[r(5, 1)]).unwrap();
        assert_eq!(solution.objective, Ratio::ZERO);
        assert_eq!(solution.primal, vec![Ratio::ZERO]);
    }

    #[test]
    fn negative_rhs_rejected() {
        let err = maximize(&[r(1, 1)], &[vec![r(1, 1)]], &[r(-1, 1)]).unwrap_err();
        assert_eq!(err, LpError::NegativeRhs { row: 0 });
    }

    #[test]
    fn shape_mismatch_rejected() {
        assert!(maximize(&[r(1, 1)], &[vec![r(1, 1), r(1, 1)]], &[r(1, 1)]).is_err());
        assert!(maximize(&[r(1, 1)], &[vec![r(1, 1)]], &[]).is_err());
    }

    #[test]
    fn degenerate_tableau_terminates() {
        // Degeneracy: redundant constraints touching the optimum; Bland's
        // rule must not cycle.
        let solution = maximize(
            &[r(1, 1), r(1, 1)],
            &[
                vec![r(1, 1), r(0, 1)],
                vec![r(1, 1), r(0, 1)],
                vec![r(0, 1), r(1, 1)],
                vec![r(1, 1), r(1, 1)],
            ],
            &[r(1, 1), r(1, 1), r(1, 1), r(2, 1)],
        )
        .unwrap();
        assert_eq!(solution.objective, r(2, 1));
    }

    #[test]
    fn duals_certify_optimality_on_random_lps() {
        use defender_num::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(0xE1);
        for _ in 0..256 {
            let c: Vec<Ratio> = (0..3)
                .map(|_| Ratio::from(rng.gen_range(0..6) as i64))
                .collect();
            let a: Vec<Vec<Ratio>> = (0..3)
                .map(|_| {
                    (0..3)
                        .map(|_| Ratio::from(rng.gen_range(0..5) as i64))
                        .collect()
                })
                .collect();
            let b: Vec<Ratio> = (0..3)
                .map(|_| Ratio::from(rng.gen_range(1..9) as i64))
                .collect();
            match maximize(&c, &a, &b) {
                Ok(solution) => {
                    // Primal feasibility.
                    for (row, &bi) in a.iter().zip(&b) {
                        let lhs: Ratio = row
                            .iter()
                            .zip(&solution.primal)
                            .map(|(&aij, &xj)| aij * xj)
                            .sum();
                        assert!(lhs <= bi);
                    }
                    assert!(solution.primal.iter().all(|&x| x >= Ratio::ZERO));
                    // Dual feasibility.
                    assert!(solution.dual.iter().all(|&y| y >= Ratio::ZERO));
                    for j in 0..c.len() {
                        let aty: Ratio = a
                            .iter()
                            .zip(&solution.dual)
                            .map(|(row, &yi)| row[j] * yi)
                            .sum();
                        assert!(aty >= c[j]);
                    }
                    // Strong duality.
                    let by: Ratio = b.iter().zip(&solution.dual).map(|(&bi, &yi)| bi * yi).sum();
                    assert_eq!(by, solution.objective);
                }
                Err(LpError::Unbounded) => {
                    // Possible when some c_j > 0 has a zero column.
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
    }
}
