//! Tableau simplex with Bland's rule, in exact rational arithmetic.
//!
//! Solves the *packing form*
//!
//! ```text
//! maximize    c · x
//! subject to  A x ≤ b,   x ≥ 0,   b ≥ 0
//! ```
//!
//! which is all the zero-sum reduction needs (the all-slack basis is
//! feasible because `b ≥ 0`, so no phase-one is required). Bland's
//! smallest-index pivoting rule guarantees termination even on degenerate
//! tableaus, and exact rationals make the optimum — and the dual prices —
//! bit-for-bit reproducible.
//!
//! Two entry points share the core loop: [`maximize`] starts from the
//! all-slack basis, and [`solve_with_basis`] *warm-starts* from a
//! caller-supplied basis (typically read off an equilibrium support via
//! complementary slackness — see `zero_sum::solve_zero_sum_hinted`). A
//! warm start that is singular or infeasible is rejected with a typed
//! [`LpError::BasisRejected`], and every solve is bounded by a pivot
//! budget returning [`LpError::PivotBudgetExceeded`] — never a panic —
//! so an adversarial basis cannot spin the exact arithmetic for hours.

use core::fmt;

use defender_num::{row_eliminate, row_scale_div, Ratio};

/// Default pivot budget: orders of magnitude above anything the
/// workspace's games need (the E15 atlas peaks at tens of pivots per
/// solve), yet small enough to bound a pathological warm start.
pub const DEFAULT_PIVOT_LIMIT: u64 = 1 << 20;

/// Errors from [`maximize`] / [`solve_with_basis`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpError {
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// A right-hand side was negative (packing form requires `b ≥ 0`).
    NegativeRhs {
        /// The offending constraint row.
        row: usize,
    },
    /// Matrix shapes disagree.
    ShapeMismatch {
        /// Human-readable description.
        reason: String,
    },
    /// The pivot budget ran out before optimality; the tableau state is
    /// discarded. Warm-start callers fall back to a cold solve.
    PivotBudgetExceeded {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// A warm-start basis could not be installed (wrong size, duplicate
    /// or out-of-range variables, singular column set) or the basic
    /// solution it defines is infeasible.
    BasisRejected {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::NegativeRhs { row } => {
                write!(f, "constraint {row} has a negative right-hand side")
            }
            LpError::ShapeMismatch { reason } => write!(f, "shape mismatch: {reason}"),
            LpError::PivotBudgetExceeded { limit } => {
                write!(f, "pivot budget of {limit} exhausted before optimality")
            }
            LpError::BasisRejected { reason } => write!(f, "warm-start basis rejected: {reason}"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution of the packing LP.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// The optimal objective value `c · x*`.
    pub objective: Ratio,
    /// The optimal primal point `x*` (length = number of variables).
    pub primal: Vec<Ratio>,
    /// The optimal dual prices `y*` (length = number of constraints);
    /// `y*` solves the dual `min b·y, Aᵀy ≥ c, y ≥ 0`.
    pub dual: Vec<Ratio>,
    /// The optimal basis: `basis[i]` is the variable occupying
    /// constraint row `i` (`< n` structural, `≥ n` slack). Feed it to
    /// [`solve_with_basis`] to warm-start a nearby LP.
    pub basis: Vec<usize>,
    /// Bland pivots this solve performed (excludes warm-start
    /// installation steps, which are plain Gaussian elimination).
    pub pivots: u64,
}

/// Solves `max c·x  s.t.  A x ≤ b, x ≥ 0` exactly from the all-slack
/// basis, with the [`DEFAULT_PIVOT_LIMIT`] budget.
///
/// # Errors
///
/// - [`LpError::ShapeMismatch`] for ragged input;
/// - [`LpError::NegativeRhs`] if any `b_i < 0`;
/// - [`LpError::Unbounded`] when no optimum exists;
/// - [`LpError::PivotBudgetExceeded`] if the default budget runs out.
pub fn maximize(c: &[Ratio], a: &[Vec<Ratio>], b: &[Ratio]) -> Result<LpSolution, LpError> {
    solve(c, a, b, None, DEFAULT_PIVOT_LIMIT)
}

/// Solves the packing LP warm-started from `basis` — the optimal basis
/// of a nearby LP (or one read off an equilibrium support). The basis is
/// installed by Gaussian pivoting, checked for feasibility, and then
/// Bland's rule runs to optimality under `pivot_limit`; when the basis
/// was already optimal the loop exits after zero pivots.
///
/// Pivots performed here are counted under `lp.simplex.pivots` *and*
/// `lp.simplex.warm_pivots`, so the telemetry separates residual work in
/// warm solves from cold-solve work.
///
/// # Errors
///
/// Everything [`maximize`] returns, plus [`LpError::BasisRejected`] when
/// `basis` is malformed, singular, or infeasible. Callers are expected
/// to fall back to a cold [`maximize`] on `BasisRejected` /
/// [`LpError::PivotBudgetExceeded`].
pub fn solve_with_basis(
    c: &[Ratio],
    a: &[Vec<Ratio>],
    b: &[Ratio],
    basis: &[usize],
    pivot_limit: u64,
) -> Result<LpSolution, LpError> {
    solve(c, a, b, Some(basis), pivot_limit)
}

fn solve(
    c: &[Ratio],
    a: &[Vec<Ratio>],
    b: &[Ratio],
    warm: Option<&[usize]>,
    pivot_limit: u64,
) -> Result<LpSolution, LpError> {
    let n = c.len();
    let m = a.len();
    if b.len() != m {
        return Err(LpError::ShapeMismatch {
            reason: format!("{m} rows but {} rhs entries", b.len()),
        });
    }
    for (i, row) in a.iter().enumerate() {
        if row.len() != n {
            return Err(LpError::ShapeMismatch {
                reason: format!("row {i} has {} coefficients, expected {n}", row.len()),
            });
        }
    }
    if let Some(row) = b.iter().position(|&bi| bi < Ratio::ZERO) {
        return Err(LpError::NegativeRhs { row });
    }

    let _span = defender_obs::span!("simplex");
    defender_obs::counter!("lp.simplex.calls").incr();
    // lint: allow(cast) constraint count fits u64; usize to u64 lossless on 64-bit
    defender_obs::histogram!("lp.simplex.constraints").record(m as u64);

    // Tableau: m constraint rows over columns [x .. | slacks .. | rhs],
    // plus a reduced-cost row (maximization: positive entry ⇒ improvable).
    let cols = n + m + 1;
    let mut tableau: Vec<Vec<Ratio>> = Vec::with_capacity(m + 1);
    for i in 0..m {
        let mut row = vec![Ratio::ZERO; cols];
        // lint: allow(index) row has cols > n entries; i < m = a.len()
        row[..n].copy_from_slice(&a[i]);
        row[n + i] = Ratio::ONE; // lint: allow(index) n + i < n + m < cols
        row[cols - 1] = b[i]; // lint: allow(index) cols >= 1; i < m = b.len()
        tableau.push(row);
    }
    let mut objective = vec![Ratio::ZERO; cols];
    objective[..n].copy_from_slice(c); // lint: allow(index) objective has cols > n entries
    tableau.push(objective);

    // basis[i]: the variable occupying constraint row i (starts at slacks).
    let mut basis: Vec<usize> = (n..n + m).collect();
    if let Some(target) = warm {
        install_basis(&mut tableau, &mut basis, target, n, m)?;
        // lint: allow(index) i < m tableau rows; cols - 1 is the rhs column
        if let Some(row) = (0..m).find(|&i| tableau[i][cols - 1] < Ratio::ZERO) {
            return Err(LpError::BasisRejected {
                reason: format!("installed basis is primal-infeasible at row {row}"),
            });
        }
    }
    let warm_started = warm.is_some();

    // Bland: entering variable = smallest column with positive reduced cost;
    // loop until no column can improve the objective (optimality).
    let mut pivots = 0u64;
    // lint: allow(index) row m is the objective row; j < n + m < cols
    while let Some(entering) = (0..n + m).find(|&j| tableau[m][j] > Ratio::ZERO) {
        if pivots >= pivot_limit {
            return Err(LpError::PivotBudgetExceeded { limit: pivot_limit });
        }
        // Ratio test; Bland tie-break on the smallest basis variable.
        let mut leaving: Option<(usize, Ratio)> = None;
        for i in 0..m {
            let coeff = tableau[i][entering]; // lint: allow(index) i < m; entering < n + m < cols
            if coeff > Ratio::ZERO {
                // lint: allow(arith) coeff > 0 checked on the line above
                let ratio = tableau[i][cols - 1] / coeff; // lint: allow(index) i < m; cols - 1 is the rhs column
                let better = match &leaving {
                    None => true,
                    // lint: allow(index) i and *li are below m = basis.len()
                    Some((li, lr)) => ratio < *lr || (ratio == *lr && basis[i] < basis[*li]),
                };
                if better {
                    leaving = Some((i, ratio));
                }
            }
        }
        let Some((pivot_row, min_ratio)) = leaving else {
            return Err(LpError::Unbounded);
        };
        pivots += 1;
        defender_obs::counter!("lp.simplex.pivots").incr();
        if warm_started {
            defender_obs::counter!("lp.simplex.warm_pivots").incr();
        }
        if min_ratio.is_zero() {
            // A zero ratio pivots without moving the solution point; Bland's
            // rule keeps these degenerate steps from cycling.
            defender_obs::counter!("lp.simplex.degenerate_pivots").incr();
        }
        pivot(&mut tableau, pivot_row, entering);
        basis[pivot_row] = entering; // lint: allow(index) pivot_row < m = basis.len()
    }

    // Read the solution.
    let mut primal = vec![Ratio::ZERO; n];
    for (i, &var) in basis.iter().enumerate() {
        if var < n {
            // lint: allow(index) var < n checked above; i < m; cols - 1 in range
            primal[var] = tableau[i][cols - 1];
        }
    }
    // Reduced cost of slack i at optimum is −y_i.
    // lint: allow(index) row m is the objective row; n + i < cols
    let dual: Vec<Ratio> = (0..m).map(|i| -tableau[m][n + i]).collect();
    // lint: allow(index) row m is the objective row; cols - 1 in range
    let objective = -tableau[m][cols - 1];
    Ok(LpSolution {
        objective,
        primal,
        dual,
        basis,
        pivots,
    })
}

/// Pivots the tableau on `(pivot_row, entering)` with the
/// deferred-reduction row kernels: one gcd per updated element instead
/// of two, and none at all on the zero/integer fast paths. Shared by the
/// Bland loop and warm-start installation.
fn pivot(tableau: &mut [Vec<Ratio>], pivot_row: usize, entering: usize) {
    // lint: allow(index) pivot_row < m + 1 rows; entering < cols
    let pivot = tableau[pivot_row][entering];
    // lint: allow(index) pivot_row is a valid tableau row
    row_scale_div(&mut tableau[pivot_row], pivot);
    // lint: allow(index) pivot_row is a valid tableau row
    let pivot_values = tableau[pivot_row].clone();
    for (i, row) in tableau.iter_mut().enumerate() {
        if i == pivot_row {
            continue;
        }
        // lint: allow(index) entering < cols; every row has cols entries
        let factor = row[entering];
        if factor.is_zero() {
            continue;
        }
        row_eliminate(row, factor, &pivot_values);
    }
}

/// Installs a warm-start basis by Gaussian pivoting: every structural
/// variable of `target` (ascending) is pivoted into the smallest
/// still-free row with a nonzero coefficient. Rows whose own slack is in
/// `target` are kept as-is. Greedy row choice is complete: if the target
/// column set is nonsingular, elimination always leaves a nonzero pivot
/// among the free rows, so a failure here means the basis really is
/// singular.
fn install_basis(
    tableau: &mut [Vec<Ratio>],
    basis: &mut [usize],
    target: &[usize],
    n: usize,
    m: usize,
) -> Result<(), LpError> {
    if target.len() != m {
        return Err(LpError::BasisRejected {
            reason: format!("basis has {} variables, expected {m}", target.len()),
        });
    }
    let mut seen = vec![false; n + m];
    for &v in target {
        if v >= n + m {
            return Err(LpError::BasisRejected {
                reason: format!("variable {v} out of range (n + m = {})", n + m),
            });
        }
        // lint: allow(index) v < n + m = seen.len() checked above
        if seen[v] {
            return Err(LpError::BasisRejected {
                reason: format!("variable {v} appears twice"),
            });
        }
        seen[v] = true; // lint: allow(index) v < n + m = seen.len() checked above
    }
    // Rows whose initial slack stays basic keep their row; the rest are
    // free to receive the entering structural variables.
    // lint: allow(index) n + i < n + m = seen.len()
    let mut assigned: Vec<bool> = (0..m).map(|i| seen[n + i]).collect();
    let mut entering_vars: Vec<usize> = target.iter().copied().filter(|&v| v < n).collect();
    entering_vars.sort_unstable();
    for j in entering_vars {
        // lint: allow(index) i < m tableau rows; j < n < cols
        let Some(row) = (0..m).find(|&i| !assigned[i] && !tableau[i][j].is_zero()) else {
            return Err(LpError::BasisRejected {
                reason: format!("singular basis: no pivot row for variable {j}"),
            });
        };
        pivot(tableau, row, j);
        basis[row] = j; // lint: allow(index) row < m = basis.len()
        assigned[row] = true; // lint: allow(index) row < m = assigned.len()
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Ratio {
        Ratio::new(n, d)
    }

    #[test]
    fn textbook_two_variable_lp() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let solution = maximize(
            &[r(3, 1), r(5, 1)],
            &[
                vec![r(1, 1), r(0, 1)],
                vec![r(0, 1), r(2, 1)],
                vec![r(3, 1), r(2, 1)],
            ],
            &[r(4, 1), r(12, 1), r(18, 1)],
        )
        .unwrap();
        assert_eq!(solution.objective, r(36, 1));
        assert_eq!(solution.primal, vec![r(2, 1), r(6, 1)]);
        // Strong duality: b·y = 36.
        let b_dot_y =
            r(4, 1) * solution.dual[0] + r(12, 1) * solution.dual[1] + r(18, 1) * solution.dual[2];
        assert_eq!(b_dot_y, r(36, 1));
    }

    #[test]
    fn fractional_optimum() {
        // max x + y s.t. 2x + y ≤ 1, x + 2y ≤ 1 → x = y = 1/3, obj 2/3.
        let solution = maximize(
            &[r(1, 1), r(1, 1)],
            &[vec![r(2, 1), r(1, 1)], vec![r(1, 1), r(2, 1)]],
            &[r(1, 1), r(1, 1)],
        )
        .unwrap();
        assert_eq!(solution.objective, r(2, 3));
        assert_eq!(solution.primal, vec![r(1, 3), r(1, 3)]);
    }

    #[test]
    fn unbounded_detected() {
        // max x with no binding constraint on x.
        let err = maximize(&[r(1, 1), r(0, 1)], &[vec![r(0, 1), r(1, 1)]], &[r(1, 1)]).unwrap_err();
        assert_eq!(err, LpError::Unbounded);
    }

    #[test]
    fn zero_objective_is_fine() {
        let solution = maximize(&[r(0, 1)], &[vec![r(1, 1)]], &[r(5, 1)]).unwrap();
        assert_eq!(solution.objective, Ratio::ZERO);
        assert_eq!(solution.primal, vec![Ratio::ZERO]);
    }

    #[test]
    fn negative_rhs_rejected() {
        let err = maximize(&[r(1, 1)], &[vec![r(1, 1)]], &[r(-1, 1)]).unwrap_err();
        assert_eq!(err, LpError::NegativeRhs { row: 0 });
    }

    #[test]
    fn shape_mismatch_rejected() {
        assert!(maximize(&[r(1, 1)], &[vec![r(1, 1), r(1, 1)]], &[r(1, 1)]).is_err());
        assert!(maximize(&[r(1, 1)], &[vec![r(1, 1)]], &[]).is_err());
    }

    #[test]
    fn degenerate_tableau_terminates() {
        // Degeneracy: redundant constraints touching the optimum; Bland's
        // rule must not cycle.
        let solution = maximize(
            &[r(1, 1), r(1, 1)],
            &[
                vec![r(1, 1), r(0, 1)],
                vec![r(1, 1), r(0, 1)],
                vec![r(0, 1), r(1, 1)],
                vec![r(1, 1), r(1, 1)],
            ],
            &[r(1, 1), r(1, 1), r(1, 1), r(2, 1)],
        )
        .unwrap();
        assert_eq!(solution.objective, r(2, 1));
    }

    #[test]
    fn pivot_budget_returns_typed_error_never_panics() {
        // The textbook LP needs a handful of pivots; a budget of 1 must
        // surface as PivotBudgetExceeded, not an assert or a hang.
        let err = solve(
            &[r(3, 1), r(5, 1)],
            &[
                vec![r(1, 1), r(0, 1)],
                vec![r(0, 1), r(2, 1)],
                vec![r(3, 1), r(2, 1)],
            ],
            &[r(4, 1), r(12, 1), r(18, 1)],
            None,
            1,
        )
        .unwrap_err();
        assert_eq!(err, LpError::PivotBudgetExceeded { limit: 1 });
        // A budget of 0 trips before the first pivot.
        let err = solve(&[r(1, 1)], &[vec![r(1, 1)]], &[r(1, 1)], None, 0).unwrap_err();
        assert_eq!(err, LpError::PivotBudgetExceeded { limit: 0 });
    }

    #[test]
    fn warm_start_from_optimal_basis_needs_zero_pivots() {
        let c = [r(3, 1), r(5, 1)];
        let a = vec![
            vec![r(1, 1), r(0, 1)],
            vec![r(0, 1), r(2, 1)],
            vec![r(3, 1), r(2, 1)],
        ];
        let b = [r(4, 1), r(12, 1), r(18, 1)];
        let cold = maximize(&c, &a, &b).unwrap();
        assert!(cold.pivots > 0);
        let warm = solve_with_basis(&c, &a, &b, &cold.basis, DEFAULT_PIVOT_LIMIT).unwrap();
        assert_eq!(warm.pivots, 0, "optimal basis re-solves pivot-free");
        assert_eq!(warm.objective, cold.objective);
        assert_eq!(warm.primal, cold.primal);
        assert_eq!(warm.dual, cold.dual);
        // Row assignment may differ; the basic variable *set* must not.
        let mut warm_set = warm.basis.clone();
        let mut cold_set = cold.basis.clone();
        warm_set.sort_unstable();
        cold_set.sort_unstable();
        assert_eq!(warm_set, cold_set);
    }

    #[test]
    fn warm_start_from_nearby_basis_finishes() {
        // Start from the all-slack basis passed explicitly: equivalent to
        // a cold solve, must reach the same optimum.
        let c = [r(1, 1), r(1, 1)];
        let a = vec![vec![r(2, 1), r(1, 1)], vec![r(1, 1), r(2, 1)]];
        let b = [r(1, 1), r(1, 1)];
        let warm = solve_with_basis(&c, &a, &b, &[2, 3], DEFAULT_PIVOT_LIMIT).unwrap();
        assert_eq!(warm.objective, r(2, 3));
        assert_eq!(warm.primal, vec![r(1, 3), r(1, 3)]);
    }

    #[test]
    fn malformed_bases_are_rejected_with_reasons() {
        let c = [r(1, 1), r(1, 1)];
        let a = vec![vec![r(2, 1), r(1, 1)], vec![r(1, 1), r(2, 1)]];
        let b = [r(1, 1), r(1, 1)];
        // Wrong size.
        assert!(matches!(
            solve_with_basis(&c, &a, &b, &[0], DEFAULT_PIVOT_LIMIT),
            Err(LpError::BasisRejected { .. })
        ));
        // Out of range.
        assert!(matches!(
            solve_with_basis(&c, &a, &b, &[0, 9], DEFAULT_PIVOT_LIMIT),
            Err(LpError::BasisRejected { .. })
        ));
        // Duplicate.
        assert!(matches!(
            solve_with_basis(&c, &a, &b, &[1, 1], DEFAULT_PIVOT_LIMIT),
            Err(LpError::BasisRejected { .. })
        ));
    }

    #[test]
    fn singular_basis_is_rejected_not_panicked() {
        // Column 1 is all zeros, so {x1, slack0} cannot form a basis for
        // the second row.
        let c = [r(1, 1), r(1, 1)];
        let a = vec![vec![r(1, 1), r(0, 1)], vec![r(1, 1), r(0, 1)]];
        let b = [r(1, 1), r(1, 1)];
        let err = solve_with_basis(&c, &a, &b, &[1, 2], DEFAULT_PIVOT_LIMIT).unwrap_err();
        assert!(matches!(err, LpError::BasisRejected { .. }), "{err}");
    }

    #[test]
    fn infeasible_basis_is_rejected() {
        // Basis {x0, slack1} for: x0 ≤ 1, x0 ≥ ... second row 2x0 ≤ 1.
        // Installing x0 from row 0 gives x0 = 1, slack1 = 1 − 2 = −1 < 0.
        let c = [r(1, 1)];
        let a = vec![vec![r(1, 1)], vec![r(2, 1)]];
        let b = [r(1, 1), r(1, 1)];
        let err = solve_with_basis(&c, &a, &b, &[0, 2], DEFAULT_PIVOT_LIMIT).unwrap_err();
        assert!(matches!(err, LpError::BasisRejected { .. }), "{err}");
    }

    #[test]
    fn warm_start_agrees_with_cold_on_random_lps() {
        use defender_num::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(0xE7);
        for _ in 0..128 {
            let c: Vec<Ratio> = (0..3)
                .map(|_| Ratio::from(rng.gen_range(0..6) as i64))
                .collect();
            let a: Vec<Vec<Ratio>> = (0..3)
                .map(|_| {
                    (0..3)
                        .map(|_| Ratio::from(rng.gen_range(0..5) as i64))
                        .collect()
                })
                .collect();
            let b: Vec<Ratio> = (0..3)
                .map(|_| Ratio::from(rng.gen_range(1..9) as i64))
                .collect();
            let Ok(cold) = maximize(&c, &a, &b) else {
                continue; // unbounded: nothing to warm-start
            };
            let warm = solve_with_basis(&c, &a, &b, &cold.basis, DEFAULT_PIVOT_LIMIT)
                .expect("optimal basis must install");
            assert_eq!(warm.objective, cold.objective);
            assert_eq!(warm.primal, cold.primal);
            assert_eq!(warm.dual, cold.dual);
            assert_eq!(warm.pivots, 0);
        }
    }

    #[test]
    fn duals_certify_optimality_on_random_lps() {
        use defender_num::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(0xE1);
        for _ in 0..256 {
            let c: Vec<Ratio> = (0..3)
                .map(|_| Ratio::from(rng.gen_range(0..6) as i64))
                .collect();
            let a: Vec<Vec<Ratio>> = (0..3)
                .map(|_| {
                    (0..3)
                        .map(|_| Ratio::from(rng.gen_range(0..5) as i64))
                        .collect()
                })
                .collect();
            let b: Vec<Ratio> = (0..3)
                .map(|_| Ratio::from(rng.gen_range(1..9) as i64))
                .collect();
            match maximize(&c, &a, &b) {
                Ok(solution) => {
                    // Primal feasibility.
                    for (row, &bi) in a.iter().zip(&b) {
                        let lhs: Ratio = row
                            .iter()
                            .zip(&solution.primal)
                            .map(|(&aij, &xj)| aij * xj)
                            .sum();
                        assert!(lhs <= bi);
                    }
                    assert!(solution.primal.iter().all(|&x| x >= Ratio::ZERO));
                    // Dual feasibility.
                    assert!(solution.dual.iter().all(|&y| y >= Ratio::ZERO));
                    for j in 0..c.len() {
                        let aty: Ratio = a
                            .iter()
                            .zip(&solution.dual)
                            .map(|(row, &yi)| row[j] * yi)
                            .sum();
                        assert!(aty >= c[j]);
                    }
                    // Strong duality.
                    let by: Ratio = b.iter().zip(&solution.dual).map(|(&bi, &yi)| bi * yi).sum();
                    assert_eq!(by, solution.objective);
                }
                Err(LpError::Unbounded) => {
                    // Possible when some c_j > 0 has a zero column.
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
    }
}
