//! Exact zero-sum matrix-game solving via the classical LP reduction.

use defender_num::Ratio;

use crate::simplex::{maximize, solve_with_basis, LpError, LpSolution, DEFAULT_PIVOT_LIMIT};

/// An exact solution of a zero-sum matrix game.
#[derive(Clone, Debug)]
pub struct ZeroSumSolution {
    /// The game's value (row player's guaranteed expectation).
    pub value: Ratio,
    /// An optimal mixed strategy for the row (maximizing) player.
    pub row_strategy: Vec<Ratio>,
    /// An optimal mixed strategy for the column (minimizing) player.
    pub col_strategy: Vec<Ratio>,
}

/// Solves the zero-sum game with payoff matrix `m` (row player receives
/// `m[i][j]`, column player pays it).
///
/// The reduction: shift `M` to `M' = M + σ > 0`, then the packing LP
/// `max Σ w_j  s.t.  M' w ≤ 1, w ≥ 0` has optimum `1/v'` where
/// `v' = value(M')`; the column strategy is `w·v'` and the row strategy
/// comes out of the duals. Everything is exact.
///
/// # Errors
///
/// [`LpError::ShapeMismatch`] for empty/ragged matrices. (The game LP is
/// never unbounded: the feasible region is compact after the shift.)
pub fn solve_zero_sum(m: &[Vec<Ratio>]) -> Result<ZeroSumSolution, LpError> {
    solve_zero_sum_hinted(m, None)
}

/// [`solve_zero_sum`] with an optional *support hint*: the supports of
/// any one equilibrium of the game, `(row_support, col_support)` as
/// strategy indices.
///
/// By complementary slackness an equilibrium's supports determine an
/// optimal basis of the packing LP — structural variables `w_j` for the
/// supported columns, slack variables for the rows *outside* the row
/// support (supported rows are tight) — so the warm-started simplex
/// typically finishes in zero Bland pivots. The attempt is counted under
/// `lp.warm.attempts`; a hint whose basis is singular, infeasible
/// (degenerate supports), malformed, or blows the pivot budget falls
/// back to the cold solve and counts under `lp.warm.rejected`. The
/// result is *always* the same optimum a cold solve produces (exact
/// arithmetic, same Bland rule from the installed basis).
///
/// # Errors
///
/// Same as [`solve_zero_sum`] — hint failures never surface, they only
/// cost the fallback.
pub fn solve_zero_sum_hinted(
    m: &[Vec<Ratio>],
    hint: Option<(&[usize], &[usize])>,
) -> Result<ZeroSumSolution, LpError> {
    let rows = m.len();
    if rows == 0 {
        return Err(LpError::ShapeMismatch {
            reason: "empty matrix".into(),
        });
    }
    let cols = m[0].len(); // lint: allow(index) rows == 0 rejected above; m[0] exists
    if cols == 0 || m.iter().any(|r| r.len() != cols) {
        return Err(LpError::ShapeMismatch {
            reason: "ragged or empty matrix".into(),
        });
    }

    // Shift strictly positive.
    let Some(min_entry) = m.iter().flat_map(|r| r.iter().copied()).min() else {
        return Err(LpError::ShapeMismatch {
            reason: "empty matrix".into(),
        });
    };
    let sigma = Ratio::ONE - min_entry.min(Ratio::ZERO);
    let shifted: Vec<Vec<Ratio>> = m
        .iter()
        .map(|r| r.iter().map(|&x| x + sigma).collect())
        .collect();

    // max Σ w_j s.t. M' w ≤ 1, w ≥ 0.
    let objective = vec![Ratio::ONE; cols];
    let rhs = vec![Ratio::ONE; rows];
    let solution = solve_packing_lp(&objective, &shifted, &rhs, hint)?;
    debug_assert!(
        solution.objective > Ratio::ZERO,
        "M' > 0 makes the optimum positive"
    );
    let Ok(shifted_value) = solution.objective.recip() else {
        // M' > 0 makes the optimum positive, so a zero objective here means
        // the simplex produced an infeasible tableau — surface it as a
        // shape-grade error instead of panicking.
        return Err(LpError::ShapeMismatch {
            reason: "zero optimum for a strictly positive shifted matrix".into(),
        });
    };

    let col_strategy: Vec<Ratio> = solution.primal.iter().map(|&w| w * shifted_value).collect();
    let row_strategy: Vec<Ratio> = solution.dual.iter().map(|&y| y * shifted_value).collect();
    debug_assert_eq!(col_strategy.iter().copied().sum::<Ratio>(), Ratio::ONE);
    debug_assert_eq!(row_strategy.iter().copied().sum::<Ratio>(), Ratio::ONE);

    Ok(ZeroSumSolution {
        value: shifted_value - sigma,
        row_strategy,
        col_strategy,
    })
}

/// Runs the packing LP, warm-started from the support hint when one is
/// given and constructible, cold otherwise. Rejected warm starts fall
/// back to the cold solve (`lp.warm.rejected`).
fn solve_packing_lp(
    objective: &[Ratio],
    shifted: &[Vec<Ratio>],
    rhs: &[Ratio],
    hint: Option<(&[usize], &[usize])>,
) -> Result<LpSolution, LpError> {
    let rows = shifted.len();
    let cols = objective.len();
    if let Some((row_support, col_support)) = hint {
        defender_obs::counter!("lp.warm.attempts").incr();
        if let Some(basis) = basis_from_supports(row_support, col_support, rows, cols) {
            match solve_with_basis(objective, shifted, rhs, &basis, DEFAULT_PIVOT_LIMIT) {
                Ok(solution) => return Ok(solution),
                Err(LpError::BasisRejected { .. } | LpError::PivotBudgetExceeded { .. }) => {
                    defender_obs::counter!("lp.warm.rejected").incr();
                }
                Err(other) => return Err(other),
            }
        } else {
            defender_obs::counter!("lp.warm.rejected").incr();
        }
    }
    maximize(objective, shifted, rhs)
}

/// Builds the complementary-slackness basis from equilibrium supports:
/// structural `w_j` for each supported column, slacks for rows outside
/// the row support, padded with supported-row slacks (ascending) when
/// the column support is smaller than the row support. Returns `None`
/// for out-of-range or oversized supports — the caller then falls back
/// to a cold solve.
fn basis_from_supports(
    row_support: &[usize],
    col_support: &[usize],
    rows: usize,
    cols: usize,
) -> Option<Vec<usize>> {
    let mut in_row_support = vec![false; rows];
    for &i in row_support {
        if i >= rows {
            return None;
        }
        in_row_support[i] = true; // lint: allow(index) i < rows checked on the guard above
    }
    let mut in_col_support = vec![false; cols];
    for &j in col_support {
        if j >= cols {
            return None;
        }
        in_col_support[j] = true; // lint: allow(index) j < cols checked on the guard above
    }
    // lint: allow(index) j < cols = in_col_support.len()
    let mut basis: Vec<usize> = (0..cols).filter(|&j| in_col_support[j]).collect();
    // lint: allow(index) i < rows = in_row_support.len()
    basis.extend((0..rows).filter(|&i| !in_row_support[i]).map(|i| cols + i));
    if basis.len() > rows {
        return None; // more supported columns than tight rows: not a basis
    }
    // Degenerate case |col support| < |row support|: keep the smallest
    // supported-row slacks basic (at value zero) to square the basis.
    // lint: allow(index) i < rows = in_row_support.len()
    for i in (0..rows).filter(|&i| in_row_support[i]) {
        if basis.len() == rows {
            break;
        }
        basis.push(cols + i);
    }
    Some(basis)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Ratio {
        Ratio::new(n, d)
    }

    fn int(v: i64) -> Ratio {
        Ratio::from(v)
    }

    /// Verifies a claimed solution: both strategies are distributions and
    /// each guarantees the value against every pure reply.
    fn certify(m: &[Vec<Ratio>], s: &ZeroSumSolution) {
        assert_eq!(s.row_strategy.iter().copied().sum::<Ratio>(), Ratio::ONE);
        assert_eq!(s.col_strategy.iter().copied().sum::<Ratio>(), Ratio::ONE);
        assert!(s.row_strategy.iter().all(|&p| p >= Ratio::ZERO));
        assert!(s.col_strategy.iter().all(|&p| p >= Ratio::ZERO));
        // Row strategy guarantees ≥ value against every column.
        for j in 0..m[0].len() {
            let payoff: Ratio = m
                .iter()
                .zip(&s.row_strategy)
                .map(|(row, &p)| row[j] * p)
                .sum();
            assert!(payoff >= s.value, "column {j}: {payoff} < {}", s.value);
        }
        // Column strategy caps every row at ≤ value.
        for (i, row) in m.iter().enumerate() {
            let payoff: Ratio = row.iter().zip(&s.col_strategy).map(|(&x, &q)| x * q).sum();
            assert!(payoff <= s.value, "row {i}: {payoff} > {}", s.value);
        }
    }

    #[test]
    fn matching_pennies() {
        let m = vec![vec![int(1), int(-1)], vec![int(-1), int(1)]];
        let s = solve_zero_sum(&m).unwrap();
        assert_eq!(s.value, Ratio::ZERO);
        assert_eq!(s.row_strategy, vec![r(1, 2), r(1, 2)]);
        assert_eq!(s.col_strategy, vec![r(1, 2), r(1, 2)]);
        certify(&m, &s);
    }

    #[test]
    fn rock_paper_scissors() {
        let m = vec![
            vec![int(0), int(-1), int(1)],
            vec![int(1), int(0), int(-1)],
            vec![int(-1), int(1), int(0)],
        ];
        let s = solve_zero_sum(&m).unwrap();
        assert_eq!(s.value, Ratio::ZERO);
        assert_eq!(s.row_strategy, vec![r(1, 3); 3]);
        certify(&m, &s);
    }

    #[test]
    fn game_with_saddle_point() {
        // Row 1 dominates; column 0 dominates: saddle at (1, 0), value 2.
        let m = vec![vec![int(1), int(3)], vec![int(2), int(4)]];
        let s = solve_zero_sum(&m).unwrap();
        assert_eq!(s.value, int(2));
        assert_eq!(s.row_strategy, vec![Ratio::ZERO, Ratio::ONE]);
        assert_eq!(s.col_strategy, vec![Ratio::ONE, Ratio::ZERO]);
        certify(&m, &s);
    }

    #[test]
    fn asymmetric_fractional_value() {
        // Classic: [[2, -1], [-1, 1]] → value 1/5, row (2/5, 3/5), col (2/5, 3/5).
        let m = vec![vec![int(2), int(-1)], vec![int(-1), int(1)]];
        let s = solve_zero_sum(&m).unwrap();
        assert_eq!(s.value, r(1, 5));
        assert_eq!(s.row_strategy, vec![r(2, 5), r(3, 5)]);
        certify(&m, &s);
    }

    #[test]
    fn rectangular_games() {
        // 1×3: row player has one option; value = min entry.
        let m = vec![vec![int(4), int(2), int(7)]];
        let s = solve_zero_sum(&m).unwrap();
        assert_eq!(s.value, int(2));
        certify(&m, &s);
        // 3×1: value = max entry.
        let m = vec![vec![int(4)], vec![int(2)], vec![int(7)]];
        let s = solve_zero_sum(&m).unwrap();
        assert_eq!(s.value, int(7));
        certify(&m, &s);
    }

    #[test]
    fn all_negative_matrix() {
        let m = vec![vec![int(-3), int(-5)], vec![int(-4), int(-2)]];
        let s = solve_zero_sum(&m).unwrap();
        certify(&m, &s);
        assert!(s.value < Ratio::ZERO);
    }

    #[test]
    fn empty_matrix_rejected() {
        assert!(solve_zero_sum(&[]).is_err());
        assert!(solve_zero_sum(&[vec![]]).is_err());
    }

    #[test]
    fn hinted_solve_matches_cold_solve_exactly() {
        // Supports of the unique equilibrium of [[2,-1],[-1,1]]: both
        // players mix fully. The hinted solve must return bit-identical
        // value and strategies.
        let m = vec![vec![int(2), int(-1)], vec![int(-1), int(1)]];
        let cold = solve_zero_sum(&m).unwrap();
        let warm = solve_zero_sum_hinted(&m, Some((&[0, 1], &[0, 1]))).unwrap();
        assert_eq!(warm.value, cold.value);
        assert_eq!(warm.row_strategy, cold.row_strategy);
        assert_eq!(warm.col_strategy, cold.col_strategy);
        certify(&m, &warm);
    }

    #[test]
    fn bad_hints_fall_back_to_cold_solve() {
        let m = vec![vec![int(2), int(-1)], vec![int(-1), int(1)]];
        let cold = solve_zero_sum(&m).unwrap();
        // Out-of-range, oversized, and empty hints all degrade gracefully.
        for hint in [
            (&[7usize][..], &[0usize, 1][..]),
            (&[0][..], &[0, 1][..]),
            (&[][..], &[][..]),
        ] {
            let s = solve_zero_sum_hinted(&m, Some(hint)).unwrap();
            assert_eq!(s.value, cold.value, "hint {hint:?}");
            certify(&m, &s);
        }
    }

    #[test]
    fn saddle_point_hint_warm_starts() {
        // Saddle at (row 1, col 0): supports are singletons.
        let m = vec![vec![int(1), int(3)], vec![int(2), int(4)]];
        let s = solve_zero_sum_hinted(&m, Some((&[1], &[0]))).unwrap();
        assert_eq!(s.value, int(2));
        certify(&m, &s);
    }

    #[test]
    fn random_hinted_solves_agree_with_cold() {
        use defender_num::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(0xE9);
        for _ in 0..64 {
            let m: Vec<Vec<Ratio>> = (0..3)
                .map(|_| {
                    (0..3)
                        .map(|_| Ratio::from(rng.gen_range(0..7) as i64 - 3))
                        .collect()
                })
                .collect();
            let cold = solve_zero_sum(&m).expect("solvable");
            let row_support: Vec<usize> = (0..3)
                .filter(|&i| !cold.row_strategy[i].is_zero())
                .collect();
            let col_support: Vec<usize> = (0..3)
                .filter(|&j| !cold.col_strategy[j].is_zero())
                .collect();
            let warm = solve_zero_sum_hinted(&m, Some((&row_support, &col_support))).unwrap();
            assert_eq!(warm.value, cold.value);
            certify(&m, &warm);
        }
    }

    #[test]
    fn random_matrices_certify() {
        use defender_num::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(0xE3);
        for _ in 0..256 {
            let m: Vec<Vec<Ratio>> = (0..4)
                .map(|_| {
                    (0..4)
                        .map(|_| Ratio::from(rng.gen_range(0..11) as i64 - 5))
                        .collect()
                })
                .collect();
            let s = solve_zero_sum(&m).expect("solvable");
            certify(&m, &s);
        }
    }
}
