//! Exact linear-system solving (Gauss–Jordan over rationals).
//!
//! Used by the support-enumeration Nash solver in `defender-game`: the
//! indifference conditions of a candidate support pair form a square
//! linear system whose exact solution decides whether the support carries
//! an equilibrium.

use defender_num::{row_eliminate, row_scale_div, Ratio};

/// Solves the square system `A x = b` exactly.
///
/// Returns `None` when `A` is singular (no unique solution).
///
/// # Panics
///
/// Panics if `a` is not square or `b` has the wrong length.
///
/// # Examples
///
/// ```
/// use defender_lp::linsolve::solve_linear;
/// use defender_num::Ratio;
///
/// let a = vec![
///     vec![Ratio::from(2), Ratio::from(1)],
///     vec![Ratio::from(1), Ratio::from(3)],
/// ];
/// let b = vec![Ratio::from(5), Ratio::from(10)];
/// let x = solve_linear(&a, &b).unwrap();
/// assert_eq!(x, vec![Ratio::from(1), Ratio::from(3)]);
/// ```
#[must_use]
pub fn solve_linear(a: &[Vec<Ratio>], b: &[Ratio]) -> Option<Vec<Ratio>> {
    let n = a.len();
    assert_eq!(b.len(), n, "rhs length must match row count");
    assert!(a.iter().all(|row| row.len() == n), "matrix must be square");

    let _span = defender_obs::span!("linsolve_eliminate");
    defender_obs::counter!("lp.linsolve.solves").incr();

    // Augmented matrix.
    let mut m: Vec<Vec<Ratio>> = a
        .iter()
        .zip(b)
        .map(|(row, &bi)| {
            let mut r = row.clone();
            r.push(bi);
            r
        })
        .collect();

    for col in 0..n {
        // Pivot: first row at/below `col` with a non-zero entry.
        // lint: allow(index) square augmented matrix: col < n rows present
        let pivot_row = (col..n).find(|&r| !m[r][col].is_zero())?;
        m.swap(col, pivot_row);
        let pivot = m[col][col]; // lint: allow(index) col < n; every row has n + 1 entries
        row_scale_div(&mut m[col], pivot); // lint: allow(index) col < n = m.len()
                                           // lint: allow(index) col..=n is within the n+1-entry row
        let pivot_row: Vec<Ratio> = m[col][col..=n].to_vec();
        for (r, row) in m.iter_mut().enumerate() {
            // lint: allow(index) every row has n + 1 entries; col < n
            if r == col || row[col].is_zero() {
                continue;
            }
            let factor = row[col]; // lint: allow(index) every row has n + 1 entries; col < n
                                   // lint: allow(index) col..=n is within the n+1-entry row
            row_eliminate(&mut row[col..=n], factor, &pivot_row);
        }
    }
    // lint: allow(index) every row has n + 1 entries; n is the rhs column
    Some(m.into_iter().map(|row| row[n]).collect())
}

/// The determinant of a square rational matrix (fraction-free would be
/// faster; plain elimination is fine at the sizes used here).
///
/// # Panics
///
/// Panics if `a` is not square.
#[must_use]
pub fn determinant(a: &[Vec<Ratio>]) -> Ratio {
    let n = a.len();
    assert!(a.iter().all(|row| row.len() == n), "matrix must be square");

    let _span = defender_obs::span!("linsolve_determinant");
    let mut m: Vec<Vec<Ratio>> = a.to_vec();
    let mut det = Ratio::ONE;
    for col in 0..n {
        // lint: allow(index) square augmented matrix: col < n rows present
        let Some(pivot_row) = (col..n).find(|&r| !m[r][col].is_zero()) else {
            return Ratio::ZERO;
        };
        if pivot_row != col {
            m.swap(col, pivot_row);
            det = -det;
        }
        let pivot = m[col][col]; // lint: allow(index) col < n; every row has n + 1 entries
        det *= pivot;
        // lint: allow(index) col..n is within the n+1-entry row
        let pivot_row: Vec<Ratio> = m[col][col..n].to_vec();
        for row in m.iter_mut().skip(col + 1) {
            // lint: allow(index) every row has n + 1 entries; col < n
            if row[col].is_zero() {
                continue;
            }
            // lint: allow(arith) pivot chosen nonzero by the find above
            let factor = row[col] / pivot; // lint: allow(index) every row has n + 1 entries; col < n
                                           // lint: allow(index) col..n is within the n+1-entry row
            row_eliminate(&mut row[col..n], factor, &pivot_row);
        }
    }
    det
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Ratio {
        Ratio::new(n, d)
    }

    fn int(v: i64) -> Ratio {
        Ratio::from(v)
    }

    #[test]
    fn solves_2x2() {
        let a = vec![vec![int(1), int(1)], vec![int(1), int(-1)]];
        let b = vec![int(3), int(1)];
        assert_eq!(solve_linear(&a, &b).unwrap(), vec![int(2), int(1)]);
    }

    #[test]
    fn solves_with_fractions() {
        let a = vec![vec![r(1, 2), r(1, 3)], vec![r(1, 4), r(1, 5)]];
        let b = vec![int(1), int(1)];
        let x = solve_linear(&a, &b).unwrap();
        // Verify by substitution.
        for (row, &bi) in a.iter().zip(&b) {
            let lhs: Ratio = row.iter().zip(&x).map(|(&aij, &xj)| aij * xj).sum();
            assert_eq!(lhs, bi);
        }
    }

    #[test]
    fn needs_row_swaps() {
        let a = vec![vec![int(0), int(1)], vec![int(1), int(0)]];
        let b = vec![int(7), int(5)];
        assert_eq!(solve_linear(&a, &b).unwrap(), vec![int(5), int(7)]);
    }

    #[test]
    fn singular_detected() {
        let a = vec![vec![int(1), int(2)], vec![int(2), int(4)]];
        assert_eq!(solve_linear(&a, &[int(1), int(2)]), None);
    }

    #[test]
    fn empty_system() {
        assert_eq!(solve_linear(&[], &[]), Some(vec![]));
    }

    #[test]
    fn determinant_values() {
        assert_eq!(determinant(&[vec![int(3)]]), int(3));
        assert_eq!(
            determinant(&[vec![int(1), int(2)], vec![int(3), int(4)]]),
            int(-2)
        );
        assert_eq!(
            determinant(&[vec![int(1), int(2)], vec![int(2), int(4)]]),
            Ratio::ZERO
        );
        // Row swap sign.
        assert_eq!(
            determinant(&[vec![int(0), int(1)], vec![int(1), int(0)]]),
            int(-1)
        );
    }

    #[test]
    fn determinant_consistent_with_solvability() {
        use defender_num::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(0xE2);
        for _ in 0..256 {
            let a: Vec<Vec<Ratio>> = (0..3)
                .map(|_| {
                    (0..3)
                        .map(|_| Ratio::from(rng.gen_range(0..9) as i64 - 4))
                        .collect()
                })
                .collect();
            let b = vec![Ratio::ONE; 3];
            let solvable = solve_linear(&a, &b).is_some();
            let det = determinant(&a);
            assert_eq!(solvable, !det.is_zero());
        }
    }
}
