//! Parse side of the shard telemetry protocol.
//!
//! Workers emit NDJSON events through `defender_obs::telemetry` (the emit
//! side owns the wire format; EXPERIMENTS.md documents the schema). The
//! runner reads each worker's stdout line by line and classifies every
//! line here: a line that parses as a JSON object with a string `"ev"`
//! field is an event; anything else is the experiment's ordinary console
//! output, which the runner files into the shard's `console.log`
//! untouched. Unknown event kinds parse as [`ShardEvent::Unknown`] rather
//! than errors, so old runners keep working when workers learn new
//! events.

use defender_obs::json::{self, JsonValue};

/// One decoded telemetry event from a shard worker.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardEvent {
    /// Worker process is alive (`start`).
    Start {
        /// The worker's OS process id.
        pid: u64,
    },
    /// The worker chose its corpus window (`window`).
    Window {
        /// Whole-corpus instance count.
        total: u64,
        /// Window start (inclusive).
        lo: u64,
        /// Window end (exclusive).
        hi: u64,
    },
    /// A named phase finished (`phase`).
    Phase {
        /// Phase name as recorded in the sidecar.
        name: String,
        /// Phase wall time in nanoseconds.
        wall_ns: u64,
    },
    /// Stride-sampled instance progress (`instance`).
    Instance {
        /// Progress label (e.g. `e15.atlas_sweep`).
        label: String,
        /// Instances completed so far.
        done: u64,
        /// Instances in this worker's window.
        total: u64,
        /// Nanoseconds since the label's sweep started.
        elapsed_ns: u64,
    },
    /// Liveness heartbeat (`hb`).
    Heartbeat {
        /// Nanoseconds since the worker's run started.
        elapsed_ns: u64,
    },
    /// Cumulative obs counter/gauge/span state (`snapshot`).
    Snapshot {
        /// Counter totals as `(name, value)` in emitted (sorted) order.
        counters: Vec<(String, u64)>,
        /// Gauge values as `(name, value)`.
        gauges: Vec<(String, u64)>,
        /// Span totals as `(name, total_ns)` — feeds the dashboard's
        /// hottest-span column.
        spans: Vec<(String, u64)>,
    },
    /// Terminal status (`summary`).
    Summary {
        /// Whether the run finished cleanly.
        ok: bool,
        /// Total run wall time in nanoseconds.
        elapsed_ns: u64,
    },
    /// An event kind this runner does not know (forward compatibility).
    Unknown {
        /// The unrecognized `ev` value.
        kind: String,
    },
}

/// Classifies one line of worker stdout: `Some(event)` when it is a
/// telemetry event, `None` when it is ordinary console output.
#[must_use]
pub fn parse_line(line: &str) -> Option<ShardEvent> {
    let trimmed = line.trim();
    if !trimmed.starts_with('{') {
        return None;
    }
    let doc = json::parse(trimmed).ok()?;
    let kind = doc.get("ev").and_then(JsonValue::as_str)?;
    let u = |key: &str| doc.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
    let event = match kind {
        "start" => ShardEvent::Start { pid: u("pid") },
        "window" => ShardEvent::Window {
            total: u("total"),
            lo: u("lo"),
            hi: u("hi"),
        },
        "phase" => ShardEvent::Phase {
            name: doc
                .get("name")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string(),
            wall_ns: u("wall_ns"),
        },
        "instance" => ShardEvent::Instance {
            label: doc
                .get("label")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string(),
            done: u("done"),
            total: u("total"),
            elapsed_ns: u("elapsed_ns"),
        },
        "hb" => ShardEvent::Heartbeat {
            elapsed_ns: u("elapsed_ns"),
        },
        "snapshot" => {
            let section = |key: &str| -> Vec<(String, u64)> {
                doc.get(key)
                    .and_then(JsonValue::as_object)
                    .map(|entries| {
                        entries
                            .iter()
                            .filter_map(|(name, v)| Some((name.clone(), v.as_u64()?)))
                            .collect()
                    })
                    .unwrap_or_default()
            };
            let spans = doc
                .get("spans")
                .and_then(JsonValue::as_object)
                .map(|entries| {
                    entries
                        .iter()
                        .filter_map(|(name, v)| {
                            Some((name.clone(), v.get("sum").and_then(JsonValue::as_u64)?))
                        })
                        .collect()
                })
                .unwrap_or_default();
            ShardEvent::Snapshot {
                counters: section("counters"),
                gauges: section("gauges"),
                spans,
            }
        }
        "summary" => ShardEvent::Summary {
            ok: doc.get("ok").and_then(JsonValue::as_bool).unwrap_or(false),
            elapsed_ns: u("elapsed_ns"),
        },
        other => ShardEvent::Unknown {
            kind: other.to_string(),
        },
    };
    Some(event)
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_obs::telemetry::Event;

    #[test]
    fn console_lines_are_not_events() {
        assert_eq!(parse_line("== E1: frontier =="), None);
        assert_eq!(parse_line("| family | n |"), None);
        assert_eq!(parse_line(r#"{"no_ev": 1}"#), None);
        assert_eq!(parse_line("{broken json"), None);
        assert_eq!(parse_line(""), None);
    }

    #[test]
    fn emitted_events_round_trip() {
        let line = Event::new("window")
            .u64("total", 17)
            .u64("lo", 5)
            .u64("hi", 11)
            .to_line();
        assert_eq!(
            parse_line(&line),
            Some(ShardEvent::Window {
                total: 17,
                lo: 5,
                hi: 11
            })
        );
        let line = Event::new("phase")
            .str("name", "atlas_sweep")
            .u64("wall_ns", 9)
            .to_line();
        assert_eq!(
            parse_line(&line),
            Some(ShardEvent::Phase {
                name: "atlas_sweep".to_string(),
                wall_ns: 9
            })
        );
        let line = Event::new("summary")
            .bool("ok", true)
            .u64("elapsed_ns", 3)
            .to_line();
        assert_eq!(
            parse_line(&line),
            Some(ShardEvent::Summary {
                ok: true,
                elapsed_ns: 3
            })
        );
    }

    #[test]
    fn instance_and_heartbeat_round_trip() {
        let line = Event::new("instance")
            .str("label", "e1")
            .u64("done", 4)
            .u64("total", 17)
            .u64("elapsed_ns", 1000)
            .to_line();
        assert_eq!(
            parse_line(&line),
            Some(ShardEvent::Instance {
                label: "e1".to_string(),
                done: 4,
                total: 17,
                elapsed_ns: 1000
            })
        );
        assert_eq!(
            parse_line(r#"{"ev": "hb", "elapsed_ns": 77}"#),
            Some(ShardEvent::Heartbeat { elapsed_ns: 77 })
        );
    }

    #[test]
    fn snapshot_events_decode_counters_and_gauges() {
        let snap = defender_obs::Snapshot {
            counters: vec![("lp.pivots".to_string(), 9)],
            gauges: vec![("par.jobs".to_string(), 2)],
            histograms: Vec::new(),
            spans: vec![defender_obs::HistStat {
                name: "e1.solve".to_string(),
                count: 4,
                sum: 400,
                buckets: Vec::new(),
            }],
        };
        let line = defender_obs::telemetry::snapshot_event(&snap).to_line();
        let Some(ShardEvent::Snapshot {
            counters,
            gauges,
            spans,
        }) = parse_line(&line)
        else {
            panic!("snapshot line must decode: {line}");
        };
        assert_eq!(counters, vec![("lp.pivots".to_string(), 9)]);
        assert_eq!(gauges, vec![("par.jobs".to_string(), 2)]);
        assert_eq!(spans, vec![("e1.solve".to_string(), 400)]);
    }

    #[test]
    fn unknown_kinds_are_tolerated() {
        assert_eq!(
            parse_line(r#"{"ev": "flux_capacitor", "x": 1}"#),
            Some(ShardEvent::Unknown {
                kind: "flux_capacitor".to_string()
            })
        );
    }
}
