//! Merging per-shard `BENCH_*.json` sidecars into one sweep-level report.
//!
//! The merged document is built through `defender_bench::RunReport`, so
//! it uses the exact byte-stable writer every single-process sidecar
//! uses. The determinism contract, section by section:
//!
//! - **counters** — summed by name across shards. Because every shard
//!   constructs only its own corpus window, the sum over all shards
//!   equals a single-process run, and the rendered `"counters": {...}`
//!   object is **byte-identical for every `--shards` width** (and for an
//!   interrupted-then-resumed sweep). This is the object the CI gate
//!   diffs.
//! - **phases** — each shard's phases in shard order under an `s<i>/`
//!   prefix. Wall times are machine- and run-sensitive; never judged for
//!   byte identity.
//! - **parallelism** — execution shape: `par.*` sums, one
//!   `sw.instances.s<i>` row per shard (its window size), and
//!   `sw.shards`. Deterministic for a fixed width but legitimately
//!   different across widths, exactly like `par.*` across `--jobs`.

use std::collections::BTreeMap;
use std::time::Duration;

use defender_bench::diff::Sidecar;
use defender_bench::RunReport;

/// Merges per-shard sidecars (in shard order) into the sweep-level
/// report and returns its JSON.
///
/// # Errors
///
/// Rejects an empty shard list and sidecars that disagree on the
/// experiment name.
pub fn merge_sidecars(shards: &[Sidecar]) -> Result<String, String> {
    let first = shards.first().ok_or("no shard sidecars to merge")?;
    let mut report = RunReport::new(&first.experiment);
    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    let mut parallelism: BTreeMap<String, u64> = BTreeMap::new();
    for (index, shard) in shards.iter().enumerate() {
        if shard.experiment != first.experiment {
            return Err(format!(
                "shard {index} ran experiment `{}`, expected `{}`",
                shard.experiment, first.experiment
            ));
        }
        for (name, seconds) in &shard.phases {
            report.phase(
                &format!("s{index}/{name}"),
                Duration::from_secs_f64(*seconds),
            );
        }
        for (name, value) in &shard.counters {
            *counters.entry(name).or_insert(0) += value;
        }
        for (name, value) in &shard.parallelism {
            match name.as_str() {
                // Per-shard identity is meaningless summed; the window
                // size survives as a per-shard row instead.
                "sw.shard_index" | "sw.shard_total" => {}
                "sw.window_instances" => {
                    parallelism.insert(format!("sw.instances.s{index}"), *value);
                }
                _ => *parallelism.entry(name.clone()).or_insert(0) += value,
            }
        }
    }
    parallelism.insert("sw.shards".to_string(), shards.len() as u64);
    for (name, value) in &counters {
        report.counter(name, *value);
    }
    for (name, value) in &parallelism {
        report.parallelism(name, *value);
    }
    Ok(report.to_json())
}

/// Extracts the rendered `"counters": {...}` object from a sidecar
/// document — the byte-identity unit the sweep gates compare. Relies on
/// the workspace writer's shape: the counters object is flat (no nested
/// braces), so it ends at the first `}` after the key.
#[must_use]
pub fn counters_object(sidecar_json: &str) -> Option<&str> {
    let start = sidecar_json.find(r#""counters": {"#)?;
    let brace = start + r#""counters": "#.len();
    let end = sidecar_json[brace..].find('}')?;
    Some(&sidecar_json[start..=brace + end])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(experiment: &str, counters: &[(&str, u64)], par: &[(&str, u64)]) -> Sidecar {
        Sidecar {
            experiment: experiment.to_string(),
            phases: vec![("solve".to_string(), 0.25)],
            counters: counters.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            parallelism: par.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn counters_sum_and_stay_sorted() {
        let merged = merge_sidecars(&[
            shard("e1", &[("lp.pivots", 10), ("graph.build.path", 2)], &[]),
            shard("e1", &[("lp.pivots", 5)], &[]),
        ])
        .unwrap();
        assert!(
            merged.contains(r#""counters": {"graph.build.path": 2, "lp.pivots": 15}"#),
            "{merged}"
        );
        assert!(merged.contains(r#""name": "s0/solve""#), "{merged}");
        assert!(merged.contains(r#""name": "s1/solve""#), "{merged}");
        assert!(merged.contains(r#""sw.shards": 2"#), "{merged}");
    }

    #[test]
    fn merged_counters_are_width_invariant() {
        // One "corpus" of counter work split two ways must merge to the
        // same counters object.
        let whole =
            merge_sidecars(&[shard("e1", &[("lp.pivots", 15), ("se.tests", 4)], &[])]).unwrap();
        let split = merge_sidecars(&[
            shard("e1", &[("lp.pivots", 9), ("se.tests", 1)], &[]),
            shard("e1", &[("lp.pivots", 6), ("se.tests", 3)], &[]),
        ])
        .unwrap();
        assert_eq!(
            counters_object(&whole).unwrap(),
            counters_object(&split).unwrap()
        );
    }

    #[test]
    fn shard_shape_rows_are_segregated_per_shard() {
        let merged = merge_sidecars(&[
            shard(
                "e15",
                &[],
                &[
                    ("par.tasks.w0", 3),
                    ("sw.shard_index", 0),
                    ("sw.shard_total", 2),
                    ("sw.window_instances", 512),
                ],
            ),
            shard(
                "e15",
                &[],
                &[
                    ("par.tasks.w0", 4),
                    ("sw.shard_index", 1),
                    ("sw.shard_total", 2),
                    ("sw.window_instances", 512),
                ],
            ),
        ])
        .unwrap();
        assert!(merged.contains(r#""par.tasks.w0": 7"#), "{merged}");
        assert!(merged.contains(r#""sw.instances.s0": 512"#), "{merged}");
        assert!(merged.contains(r#""sw.instances.s1": 512"#), "{merged}");
        assert!(!merged.contains("sw.shard_index"), "{merged}");
        let parsed = Sidecar::parse(&merged).unwrap();
        assert_eq!(parsed.experiment, "e15");
    }

    #[test]
    fn empty_window_shards_merge_as_no_ops() {
        // A shard whose window is empty (--shards wider than the corpus)
        // contributes no counters; merging it in must not perturb the
        // byte-identity unit, and its zero-size window must still show up
        // as a per-shard row.
        let whole = merge_sidecars(&[shard(
            "e1",
            &[("lp.pivots", 15)],
            &[("sw.window_instances", 17)],
        )])
        .unwrap();
        let with_empty = merge_sidecars(&[
            shard("e1", &[("lp.pivots", 15)], &[("sw.window_instances", 17)]),
            shard("e1", &[], &[("sw.window_instances", 0)]),
        ])
        .unwrap();
        assert_eq!(
            counters_object(&whole).unwrap(),
            counters_object(&with_empty).unwrap()
        );
        assert!(
            with_empty.contains(r#""sw.instances.s1": 0"#),
            "{with_empty}"
        );
    }

    #[test]
    fn mismatched_experiments_are_rejected() {
        assert!(merge_sidecars(&[]).is_err());
        assert!(merge_sidecars(&[shard("e1", &[], &[]), shard("e2", &[], &[])]).is_err());
    }

    #[test]
    fn counters_object_extracts_the_identity_unit() {
        let mut report = RunReport::new("x");
        report.counter("a.b", 1).counter("c.d", 2);
        report.parallelism("par.jobs", 8);
        let json = report.to_json();
        assert_eq!(
            counters_object(&json).unwrap(),
            r#""counters": {"a.b": 1, "c.d": 2}"#
        );
        assert_eq!(counters_object("no counters here"), None);
    }
}
