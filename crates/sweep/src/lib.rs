//! defender-sweep — out-of-process sharded sweep runner.
//!
//! Splits one experiment's instance corpus across worker processes
//! (`exp_*` binaries re-invoked with `--shard i/N --telemetry`), streams
//! each worker's NDJSON telemetry into a live dashboard, checkpoints
//! finished shards so a killed sweep resumes instead of restarting, and
//! merges the per-shard `BENCH_*.json` sidecars into one sweep-level
//! report whose counters object is byte-identical for every shard width.
//! DESIGN.md §14 documents the architecture; EXPERIMENTS.md documents
//! the wire protocol and the `sw.*` metric namespace.
//!
//! Module map:
//!
//! - [`protocol`] — parse side of the NDJSON shard telemetry (the emit
//!   side is `defender_obs::telemetry`);
//! - [`monitor`] — per-shard progress/rate/ETA/stall aggregation and the
//!   text dashboard;
//! - [`runner`] — process orchestration, checkpoint-resume, scheduling;
//! - [`merge`] — sidecar merging and the counters byte-identity unit.

pub mod merge;
pub mod monitor;
pub mod protocol;
pub mod runner;

pub use merge::{counters_object, merge_sidecars};
pub use monitor::{Monitor, ShardState, ShardView};
pub use protocol::{parse_line, ShardEvent};
pub use runner::{run_sweep, SweepConfig, SweepOutcome};

/// Maps a sweepable experiment's short name to its worker binary.
/// Accepts the full binary name too (`exp_e1_pure_frontier`), so scripts
/// can pass either. Only experiments whose corpora are windowed through
/// `defender_bench::shard::window` are listed — sharding an experiment
/// that ignores its window would duplicate every instance N times.
#[must_use]
pub fn experiment_binary(name: &str) -> Option<&'static str> {
    const SWEEPABLE: &[(&str, &str)] = &[
        ("e1", "exp_e1_pure_frontier"),
        ("e15", "exp_e15_value_atlas"),
    ];
    SWEEPABLE
        .iter()
        .find(|(short, binary)| *short == name || *binary == name)
        .map(|(_, binary)| *binary)
}

/// The short names accepted by [`experiment_binary`], for help text.
#[must_use]
pub fn sweepable_experiments() -> &'static [&'static str] {
    &["e1", "e15"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_short_and_full_names() {
        assert_eq!(experiment_binary("e1"), Some("exp_e1_pure_frontier"));
        assert_eq!(
            experiment_binary("exp_e15_value_atlas"),
            Some("exp_e15_value_atlas")
        );
        assert_eq!(
            experiment_binary("e2"),
            None,
            "unsharded experiments are not sweepable"
        );
        for name in sweepable_experiments() {
            assert!(experiment_binary(name).is_some(), "{name}");
        }
    }
}
