//! Parent-side live aggregation of the shard telemetry stream.
//!
//! The [`Monitor`] folds every decoded [`ShardEvent`] into a per-shard
//! view (state, instance progress, rate, ETA, hottest span, last-heard
//! time) and renders the whole sweep as a text dashboard. Rendering is a
//! pure function of the monitor state so tests can assert on it; the
//! runner decides how often to draw and whether the terminal supports
//! in-place redraw. Stalled-shard detection is a state machine over the
//! last-heard clock: a running shard that has not produced any telemetry
//! for longer than the configured timeout is flagged (and counted in
//! `sw.stalls`) until it speaks again — workers heartbeat every 500 ms,
//! so a multi-second silence means a wedged or dead process, not a slow
//! instance.

use std::time::{Duration, Instant};

use crate::protocol::ShardEvent;

/// Lifecycle of one shard as seen by the parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardState {
    /// Not yet spawned.
    Pending,
    /// Spawned; telemetry flowing.
    Running,
    /// Running but silent past the stall timeout.
    Stalled,
    /// Finished and checkpointed (sidecar + DONE marker on disk).
    Done,
    /// Exited non-zero or produced no valid sidecar.
    Failed,
    /// Checkpointed by an earlier run; skipped under `--resume`.
    Resumed,
}

impl ShardState {
    fn label(self) -> &'static str {
        match self {
            ShardState::Pending => "waiting",
            ShardState::Running => "running",
            ShardState::Stalled => "STALLED",
            ShardState::Done => "done",
            ShardState::Failed => "FAILED",
            ShardState::Resumed => "resumed",
        }
    }
}

/// Per-shard aggregate of the telemetry stream.
#[derive(Clone, Debug)]
pub struct ShardView {
    /// Lifecycle state.
    pub state: ShardState,
    /// Worker pid from the `start` event.
    pub pid: Option<u64>,
    /// Instances completed (from the latest `instance` event).
    pub done: u64,
    /// Instances in this shard's window (from `window`/`instance`).
    pub total: u64,
    /// Whether a `window`/`instance` event has pinned `total` — separates
    /// "window not announced yet" from a genuinely empty window (`--shards`
    /// wider than the corpus), which would otherwise render as a shard
    /// stuck "starting".
    pub window_known: bool,
    /// Label of the sweep currently progressing (e.g. `e15.atlas_sweep`).
    pub label: String,
    /// Nanoseconds the current sweep label has been running (worker clock).
    pub elapsed_ns: u64,
    /// Sum of all counters in the latest snapshot (dashboard footer).
    pub counters_total: u64,
    /// Hottest span so far as `(name, total_ns)`.
    pub top_span: Option<(String, u64)>,
    /// Parent-clock time the shard last produced telemetry.
    pub last_heard: Option<Instant>,
}

impl ShardView {
    fn new() -> ShardView {
        ShardView {
            state: ShardState::Pending,
            pid: None,
            done: 0,
            total: 0,
            window_known: false,
            label: String::new(),
            elapsed_ns: 0,
            counters_total: 0,
            top_span: None,
            last_heard: None,
        }
    }
}

/// Instance completion rate in instances/second, clamping the elapsed
/// time to one nanosecond so a first instance finishing "instantly"
/// cannot divide by zero.
#[must_use]
pub fn rate_per_sec(done: u64, elapsed_ns: u64) -> f64 {
    done as f64 / (elapsed_ns.max(1) as f64 / 1e9)
}

/// Estimated seconds to completion, `None` until the first instance
/// lands (no rate to extrapolate from) and zero once `done >= total`.
#[must_use]
pub fn eta_seconds(done: u64, total: u64, elapsed_ns: u64) -> Option<f64> {
    if done == 0 {
        return None;
    }
    if done >= total {
        return Some(0.0);
    }
    Some((total - done) as f64 / rate_per_sec(done, elapsed_ns))
}

/// Compact human duration for the dashboard (`850ms`, `12.3s`, `4m07s`).
#[must_use]
pub fn format_secs(seconds: f64) -> String {
    if seconds < 1.0 {
        format!("{:.0}ms", seconds * 1e3)
    } else if seconds < 120.0 {
        format!("{seconds:.1}s")
    } else {
        let whole = seconds as u64;
        format!("{}m{:02}s", whole / 60, whole % 60)
    }
}

/// The live sweep dashboard state.
#[derive(Debug)]
pub struct Monitor {
    experiment: String,
    views: Vec<ShardView>,
    stall_timeout: Duration,
    started: Instant,
}

impl Monitor {
    /// Creates a monitor for `shards` shards of `experiment`.
    #[must_use]
    pub fn new(experiment: &str, shards: u64, stall_timeout: Duration) -> Monitor {
        Monitor {
            experiment: experiment.to_string(),
            views: (0..shards).map(|_| ShardView::new()).collect(),
            stall_timeout,
            started: Instant::now(),
        }
    }

    /// Read access to the per-shard views.
    #[must_use]
    pub fn views(&self) -> &[ShardView] {
        &self.views
    }

    fn view_mut(&mut self, shard: usize) -> Option<&mut ShardView> {
        self.views.get_mut(shard)
    }

    /// Marks a shard as spawned (before its first event arrives).
    pub fn mark_spawned(&mut self, shard: usize, now: Instant) {
        if let Some(view) = self.view_mut(shard) {
            view.state = ShardState::Running;
            view.last_heard = Some(now);
        }
    }

    /// Marks a shard checkpointed by a previous run (`--resume`).
    pub fn mark_resumed(&mut self, shard: usize) {
        if let Some(view) = self.view_mut(shard) {
            view.state = ShardState::Resumed;
        }
    }

    /// Marks a shard finished and checkpointed.
    pub fn mark_done(&mut self, shard: usize) {
        if let Some(view) = self.view_mut(shard) {
            view.state = ShardState::Done;
            if view.total > 0 {
                view.done = view.total;
            }
        }
    }

    /// Marks a shard failed.
    pub fn mark_failed(&mut self, shard: usize) {
        if let Some(view) = self.view_mut(shard) {
            view.state = ShardState::Failed;
        }
    }

    /// Folds one telemetry event from `shard` into the dashboard.
    pub fn apply(&mut self, shard: usize, event: &ShardEvent, now: Instant) {
        let Some(view) = self.views.get_mut(shard) else {
            return;
        };
        view.last_heard = Some(now);
        if view.state == ShardState::Stalled {
            view.state = ShardState::Running;
        }
        match event {
            ShardEvent::Start { pid } => view.pid = Some(*pid),
            ShardEvent::Window { lo, hi, .. } => {
                view.total = hi.saturating_sub(*lo);
                view.window_known = true;
            }
            ShardEvent::Instance {
                label,
                done,
                total,
                elapsed_ns,
            } => {
                view.label.clone_from(label);
                view.done = *done;
                view.total = *total;
                view.window_known = true;
                view.elapsed_ns = *elapsed_ns;
            }
            ShardEvent::Heartbeat { .. } => {
                defender_obs::counter!("sw.heartbeats").incr();
            }
            ShardEvent::Snapshot {
                counters, spans, ..
            } => {
                view.counters_total = counters.iter().map(|(_, v)| v).sum();
                if let Some((name, ns)) = spans.iter().max_by_key(|(_, ns)| *ns) {
                    view.top_span = Some((name.clone(), *ns));
                }
            }
            ShardEvent::Phase { .. } | ShardEvent::Summary { .. } | ShardEvent::Unknown { .. } => {}
        }
    }

    /// Flags running shards that have been silent past the stall timeout.
    /// Returns how many shards *newly* stalled on this tick.
    pub fn tick(&mut self, now: Instant) -> usize {
        let timeout = self.stall_timeout;
        let mut newly_stalled = 0;
        for view in &mut self.views {
            if view.state != ShardState::Running {
                continue;
            }
            let silent = view
                .last_heard
                .map_or(true, |heard| now.duration_since(heard) > timeout);
            if silent {
                view.state = ShardState::Stalled;
                newly_stalled += 1;
                defender_obs::counter!("sw.stalls").incr();
            }
        }
        newly_stalled
    }

    /// Whether every shard reached a terminal state.
    #[must_use]
    pub fn all_settled(&self) -> bool {
        self.views.iter().all(|v| {
            matches!(
                v.state,
                ShardState::Done | ShardState::Failed | ShardState::Resumed
            )
        })
    }

    /// Renders the dashboard: one header, one line per shard, one footer.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "sweep {} [{} shard(s)] elapsed {}\n",
            self.experiment,
            self.views.len(),
            format_secs(self.started.elapsed().as_secs_f64())
        );
        for (i, view) in self.views.iter().enumerate() {
            out.push_str(&format!("  s{i} {}\n", render_shard(view)));
        }
        let live_counters: u64 = self
            .views
            .iter()
            .filter(|v| v.state == ShardState::Running || v.state == ShardState::Stalled)
            .map(|v| v.counters_total)
            .sum();
        if live_counters > 0 {
            out.push_str(&format!("  live counter total {live_counters}\n"));
        }
        out
    }

    /// Lines in [`Monitor::render`] output (for in-place terminal redraw).
    #[must_use]
    pub fn height(&self) -> usize {
        self.render().lines().count()
    }
}

/// One shard's dashboard line (without the `s<i>` prefix).
fn render_shard(view: &ShardView) -> String {
    match view.state {
        ShardState::Pending => "waiting".to_string(),
        ShardState::Resumed => "resumed from checkpoint".to_string(),
        ShardState::Done | ShardState::Failed => format!(
            "[{}] {}/{} {}",
            bar(view.total, view.total.max(1)),
            view.total,
            view.total,
            view.state.label()
        ),
        ShardState::Running | ShardState::Stalled => {
            let mut line = if view.window_known && view.total == 0 {
                "0/0 empty window".to_string()
            } else if view.total > 0 {
                let mut s = format!(
                    "[{}] {:>3}/{} {}",
                    bar(view.done, view.total),
                    view.done,
                    view.total,
                    view.label
                );
                s.push_str(&format!(
                    " {:.1}/s",
                    rate_per_sec(view.done, view.elapsed_ns)
                ));
                match eta_seconds(view.done, view.total, view.elapsed_ns) {
                    Some(eta) => s.push_str(&format!(" eta {}", format_secs(eta))),
                    None => s.push_str(" eta ?"),
                }
                s
            } else {
                "starting".to_string()
            };
            if let Some((name, ns)) = &view.top_span {
                line.push_str(&format!(" hot {} {}", name, format_secs(*ns as f64 / 1e9)));
            }
            line.push(' ');
            line.push_str(view.state.label());
            line
        }
    }
}

/// A 20-cell progress bar.
fn bar(done: u64, total: u64) -> String {
    const CELLS: u64 = 20;
    let filled = (done.min(total) * CELLS).checked_div(total).unwrap_or(0);
    let mut s = String::with_capacity(CELLS as usize);
    for i in 0..CELLS {
        s.push(if i < filled { '#' } else { '-' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance(done: u64, total: u64, elapsed_ns: u64) -> ShardEvent {
        ShardEvent::Instance {
            label: "e15.atlas_sweep".to_string(),
            done,
            total,
            elapsed_ns,
        }
    }

    #[test]
    fn rate_and_eta_clamp_the_boundaries() {
        // First instance at elapsed 0: clamped, no divide-by-zero.
        assert!(rate_per_sec(1, 0).is_finite());
        assert_eq!(eta_seconds(0, 10, 0), None, "no rate before any instance");
        assert_eq!(eta_seconds(10, 10, 5_000), Some(0.0), "finished");
        assert_eq!(
            eta_seconds(12, 10, 5_000),
            Some(0.0),
            "over-counted still 0"
        );
        // Halfway through at 2s elapsed: 2s remain.
        let eta = eta_seconds(5, 10, 2_000_000_000).unwrap();
        assert!((eta - 2.0).abs() < 1e-9, "{eta}");
    }

    #[test]
    fn dashboard_tracks_progress_and_renders_eta() {
        let mut m = Monitor::new("e15", 2, Duration::from_secs(5));
        let now = Instant::now();
        m.mark_spawned(0, now);
        m.apply(0, &ShardEvent::Start { pid: 42 }, now);
        m.apply(
            0,
            &ShardEvent::Window {
                total: 1024,
                lo: 0,
                hi: 512,
            },
            now,
        );
        m.apply(0, &instance(256, 512, 2_000_000_000), now);
        let rendered = m.render();
        assert!(
            rendered.contains("s0 [##########----------] 256/512"),
            "{rendered}"
        );
        assert!(rendered.contains("eta 2.0s"), "{rendered}");
        assert!(rendered.contains("running"), "{rendered}");
        assert!(rendered.contains("s1 waiting"), "{rendered}");
        assert_eq!(m.views()[0].pid, Some(42));
        m.mark_done(0);
        assert!(m.render().contains("512/512 done"), "{}", m.render());
    }

    #[test]
    fn empty_windows_render_as_empty_not_starting() {
        // --shards wider than the corpus hands some shards a zero-length
        // window; the dashboard must say so instead of showing the shard
        // perpetually "starting".
        let mut m = Monitor::new("e1", 1, Duration::from_secs(5));
        let now = Instant::now();
        m.mark_spawned(0, now);
        assert!(m.render().contains("starting"), "{}", m.render());
        m.apply(
            0,
            &ShardEvent::Window {
                total: 17,
                lo: 3,
                hi: 3,
            },
            now,
        );
        let rendered = m.render();
        assert!(rendered.contains("0/0 empty window"), "{rendered}");
        assert!(rendered.contains("running"), "{rendered}");
        assert!(!rendered.contains("starting"), "{rendered}");
        m.mark_done(0);
        assert!(m.render().contains("0/0 done"), "{}", m.render());
    }

    #[test]
    fn snapshot_feeds_footer_and_hottest_span() {
        let mut m = Monitor::new("e1", 1, Duration::from_secs(5));
        let now = Instant::now();
        m.mark_spawned(0, now);
        m.apply(
            0,
            &ShardEvent::Snapshot {
                counters: vec![("lp.pivots".to_string(), 40), ("se.tests".to_string(), 2)],
                gauges: Vec::new(),
                spans: vec![
                    ("e1.solve".to_string(), 900_000_000),
                    ("e1.setup".to_string(), 100),
                ],
            },
            now,
        );
        let rendered = m.render();
        assert!(rendered.contains("live counter total 42"), "{rendered}");
        assert!(rendered.contains("hot e1.solve 900ms"), "{rendered}");
    }

    #[test]
    fn silence_past_the_timeout_stalls_and_recovers() {
        let mut m = Monitor::new("e1", 1, Duration::from_millis(100));
        let t0 = Instant::now();
        m.mark_spawned(0, t0);
        assert_eq!(m.tick(t0), 0, "fresh shard is not stalled");
        let late = t0 + Duration::from_millis(250);
        assert_eq!(m.tick(late), 1, "silent past timeout stalls");
        assert_eq!(m.views()[0].state, ShardState::Stalled);
        assert_eq!(m.tick(late), 0, "stall is counted once");
        assert!(m.render().contains("STALLED"), "{}", m.render());
        // Any event revives the shard.
        m.apply(0, &ShardEvent::Heartbeat { elapsed_ns: 1 }, late);
        assert_eq!(m.views()[0].state, ShardState::Running);
    }

    #[test]
    fn settled_means_every_shard_terminal() {
        let mut m = Monitor::new("e1", 3, Duration::from_secs(1));
        assert!(!m.all_settled());
        m.mark_resumed(0);
        m.mark_done(1);
        m.mark_failed(2);
        assert!(m.all_settled());
        let rendered = m.render();
        assert!(rendered.contains("resumed from checkpoint"), "{rendered}");
        assert!(rendered.contains("FAILED"), "{rendered}");
    }
}
