//! Sweep orchestration: spawn shard workers, stream their telemetry,
//! checkpoint finished shards, merge sidecars.
//!
//! One sweep = one output directory. Layout:
//!
//! ```text
//! <out_dir>/
//!   sweep.json            manifest (experiment, shards, binary) — resume guard
//!   shard_<i>/
//!     BENCH_<exp>.json    the worker's own sidecar (written by the worker;
//!                         the worker runs with this directory as its cwd)
//!     console.log         non-telemetry stdout lines
//!     stderr.log          worker stderr
//!     PID                 worker pid (for kill-based smoke tests)
//!     DONE                checkpoint marker, written only after the
//!                         sidecar validated
//!   BENCH_<exp>.json      the merged sweep-level sidecar
//! ```
//!
//! The DONE marker is the checkpoint unit: a killed sweep re-invoked with
//! `--resume` re-runs exactly the shards without a marker, and because
//! each shard's counters depend only on its window, the merged output of
//! an interrupted-then-resumed sweep is byte-identical (counters object)
//! to an uninterrupted one.

use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use defender_bench::diff::Sidecar;

use crate::merge::merge_sidecars;
use crate::monitor::Monitor;
use crate::protocol::{parse_line, ShardEvent};

/// Configuration for one sweep run.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Experiment name (only used for display; the binary decides what
    /// actually runs).
    pub experiment: String,
    /// Path to the `exp_*` worker binary.
    pub binary: PathBuf,
    /// Number of shards to partition the corpus into.
    pub shards: u64,
    /// Sweep output directory (created if absent).
    pub out_dir: PathBuf,
    /// Re-use checkpoints from a previous run in `out_dir`.
    pub resume: bool,
    /// Maximum concurrently running workers (`0` = all shards at once).
    pub parallel: usize,
    /// `--jobs` forwarded to every worker.
    pub jobs: Option<usize>,
    /// Forward `--profile` to workers (per-shard hottest-span feed).
    pub profile: bool,
    /// Silence past this duration flags a shard as stalled.
    pub stall_timeout: Duration,
    /// Stop (without merging) after this many *newly* finished shards —
    /// deterministic interruption for checkpoint-resume tests.
    pub stop_after: Option<u64>,
    /// Suppress the live dashboard.
    pub quiet: bool,
}

impl SweepConfig {
    /// A config with the defaults the CLI exposes.
    #[must_use]
    pub fn new(experiment: &str, binary: PathBuf, shards: u64, out_dir: PathBuf) -> SweepConfig {
        SweepConfig {
            experiment: experiment.to_string(),
            binary,
            shards,
            out_dir,
            resume: false,
            parallel: 0,
            jobs: None,
            profile: false,
            stall_timeout: Duration::from_secs(10),
            stop_after: None,
            quiet: false,
        }
    }
}

/// What a sweep run produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Path of the merged sweep-level sidecar (absent when stopped early).
    pub merged_sidecar: Option<PathBuf>,
    /// Shards that finished during *this* run.
    pub completed: u64,
    /// Shards skipped because a checkpoint already covered them.
    pub resumed: u64,
    /// Whether `stop_after` ended the run before all shards finished.
    pub stopped_early: bool,
}

/// Messages the per-shard stdout reader threads send to the main loop.
enum Msg {
    Event(usize, ShardEvent),
    Console(usize, String),
    Eof,
}

/// One live worker.
struct Worker {
    shard: usize,
    child: std::process::Child,
}

/// Runs a sweep to completion (or to `stop_after`).
///
/// # Errors
///
/// Propagates spawn/IO failures, a resume manifest mismatch, worker
/// failures (non-zero exit or missing sidecar), and merge errors.
pub fn run_sweep(config: &SweepConfig) -> Result<SweepOutcome, String> {
    if config.shards == 0 {
        return Err("a sweep needs at least 1 shard".to_string());
    }
    // Workers run with their shard directory as cwd, so a relative
    // binary path would resolve against the wrong directory — pin it
    // to an absolute path up front.
    let binary = std::fs::canonicalize(&config.binary)
        .map_err(|e| format!("worker binary {}: {e}", config.binary.display()))?;
    let config = &SweepConfig {
        binary,
        ..config.clone()
    };
    std::fs::create_dir_all(&config.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", config.out_dir.display()))?;
    check_manifest(config)?;
    defender_obs::enable();
    defender_obs::gauge!("sw.shards").set(config.shards);

    let shard_count = usize::try_from(config.shards).map_err(|_| "too many shards")?;
    let mut monitor = Monitor::new(&config.experiment, config.shards, config.stall_timeout);
    let mut pending: VecDeque<usize> = VecDeque::new();
    let mut resumed = 0u64;
    for shard in 0..shard_count {
        if config.resume && checkpoint_valid(&shard_dir(config, shard)) {
            monitor.mark_resumed(shard);
            resumed += 1;
        } else {
            pending.push_back(shard);
        }
    }
    if resumed > 0 {
        defender_obs::counter!("sw.resumed").add(resumed);
    }

    let parallel = if config.parallel == 0 {
        shard_count.max(1)
    } else {
        config.parallel
    };
    let (tx, rx) = mpsc::channel::<Msg>();
    let mut workers: Vec<Worker> = Vec::new();
    let mut readers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut consoles: Vec<Option<std::fs::File>> = (0..shard_count).map(|_| None).collect();
    let mut completed = 0u64;
    let mut failures: Vec<String> = Vec::new();
    let mut stopped_early = false;
    let mut painter = Painter::new(config.quiet);

    loop {
        while workers.len() < parallel && !stopped_early {
            let Some(shard) = pending.pop_front() else {
                break;
            };
            let (worker, reader, console) = spawn_shard(config, shard, &tx)?;
            monitor.mark_spawned(shard, Instant::now());
            workers.push(worker);
            readers.push(reader);
            consoles[shard] = Some(console);
        }
        if workers.is_empty() && (pending.is_empty() || stopped_early) {
            break;
        }

        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(Msg::Event(shard, event)) => monitor.apply(shard, &event, Instant::now()),
            Ok(Msg::Console(shard, line)) => {
                if let Some(file) = consoles.get_mut(shard).and_then(Option::as_mut) {
                    let _ = writeln!(file, "{line}");
                }
            }
            Ok(Msg::Eof) | Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {}
        }

        let mut still_running = Vec::new();
        for mut worker in workers {
            match worker.child.try_wait() {
                Ok(Some(status)) => {
                    let shard = worker.shard;
                    let dir = shard_dir(config, shard);
                    if status.success() && seal_checkpoint(&dir).is_ok() {
                        monitor.mark_done(shard);
                        completed += 1;
                        if config.stop_after.is_some_and(|k| completed >= k) {
                            stopped_early = true;
                        }
                    } else {
                        monitor.mark_failed(shard);
                        failures.push(format!(
                            "shard {shard} failed ({status}); see {}",
                            dir.join("stderr.log").display()
                        ));
                    }
                }
                Ok(None) => still_running.push(worker),
                Err(e) => {
                    monitor.mark_failed(worker.shard);
                    failures.push(format!("shard {}: wait failed: {e}", worker.shard));
                }
            }
        }
        workers = still_running;
        if stopped_early {
            // Deterministic-interruption mode: abandon live workers so the
            // resume path re-runs them from scratch.
            for worker in &mut workers {
                let _ = worker.child.kill();
                let _ = worker.child.wait();
            }
            workers.clear();
        }

        monitor.tick(Instant::now());
        painter.maybe_draw(&monitor);
    }
    drop(tx);
    for reader in readers {
        let _ = reader.join();
    }
    painter.finish(&monitor);

    if !failures.is_empty() {
        return Err(failures.join("\n"));
    }
    if stopped_early {
        return Ok(SweepOutcome {
            merged_sidecar: None,
            completed,
            resumed,
            stopped_early: true,
        });
    }

    let merged_sidecar = Some(merge_shards(config, shard_count)?);
    Ok(SweepOutcome {
        merged_sidecar,
        completed,
        resumed,
        stopped_early: false,
    })
}

/// The directory owned by one shard.
fn shard_dir(config: &SweepConfig, shard: usize) -> PathBuf {
    config.out_dir.join(format!("shard_{shard}"))
}

/// Writes or verifies the sweep manifest, so `--resume` cannot silently
/// mix checkpoints from a different experiment or shard width.
fn check_manifest(config: &SweepConfig) -> Result<(), String> {
    let path = config.out_dir.join("sweep.json");
    let mut manifest = defender_obs::json::JsonObject::new();
    manifest.field_str("experiment", &config.experiment);
    manifest.field_u64("shards", config.shards);
    let rendered = manifest.finish() + "\n";
    if config.resume && path.exists() {
        let prior = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        if prior != rendered {
            return Err(format!(
                "resume mismatch in {}: manifest records {} but this run asked for {}",
                path.display(),
                prior.trim(),
                rendered.trim()
            ));
        }
        return Ok(());
    }
    std::fs::write(&path, rendered).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Whether a shard directory holds a complete checkpoint: DONE marker
/// plus a parseable sidecar.
fn checkpoint_valid(dir: &Path) -> bool {
    dir.join("DONE").exists() && find_sidecar(dir).is_some()
}

/// The shard's `BENCH_*.json`, if exactly one exists and parses.
fn find_sidecar(dir: &Path) -> Option<PathBuf> {
    let entries = std::fs::read_dir(dir).ok()?;
    let mut found = None;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            if found.is_some() {
                return None;
            }
            found = Some(entry.path());
        }
    }
    let path = found?;
    Sidecar::load(&path).ok().map(|_| path)
}

/// Validates the shard's sidecar and writes the DONE marker.
fn seal_checkpoint(dir: &Path) -> Result<(), String> {
    let sidecar = find_sidecar(dir).ok_or("no valid sidecar")?;
    std::fs::write(dir.join("DONE"), "ok\n")
        .map_err(|e| format!("cannot write DONE next to {}: {e}", sidecar.display()))?;
    Ok(())
}

/// Spawns one shard worker with its stdout reader thread. The worker's
/// cwd is its shard directory, so its `BENCH_*.json` lands there.
fn spawn_shard(
    config: &SweepConfig,
    shard: usize,
    tx: &mpsc::Sender<Msg>,
) -> Result<(Worker, std::thread::JoinHandle<()>, std::fs::File), String> {
    let dir = shard_dir(config, shard);
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    // A re-run (resume after interruption) must not inherit stale output.
    for stale in ["DONE", "PID"] {
        let _ = std::fs::remove_file(dir.join(stale));
    }
    if let Some(old) = find_sidecar(&dir) {
        let _ = std::fs::remove_file(old);
    }
    let stderr = std::fs::File::create(dir.join("stderr.log"))
        .map_err(|e| format!("cannot create stderr.log in {}: {e}", dir.display()))?;
    let console = std::fs::File::create(dir.join("console.log"))
        .map_err(|e| format!("cannot create console.log in {}: {e}", dir.display()))?;
    let mut command = std::process::Command::new(&config.binary);
    command
        .current_dir(&dir)
        .arg("--shard")
        .arg(format!("{shard}/{}", config.shards))
        .arg("--telemetry")
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::from(stderr));
    if let Some(jobs) = config.jobs {
        command.arg("--jobs").arg(jobs.to_string());
    }
    if config.profile {
        command.arg("--profile");
    }
    let mut child = command.spawn().map_err(|e| {
        format!(
            "cannot spawn {} for shard {shard}: {e}",
            config.binary.display()
        )
    })?;
    let _ = std::fs::write(dir.join("PID"), format!("{}\n", child.id()));
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| format!("no stdout pipe for shard {shard}"))?;
    let tx = tx.clone();
    let reader = std::thread::Builder::new()
        .name(format!("shard-{shard}-reader"))
        .spawn(move || {
            let buffered = std::io::BufReader::new(stdout);
            for line in buffered.lines() {
                let Ok(line) = line else { break };
                let msg = match parse_line(&line) {
                    Some(event) => Msg::Event(shard, event),
                    None => Msg::Console(shard, line),
                };
                if tx.send(msg).is_err() {
                    break;
                }
            }
            let _ = tx.send(Msg::Eof);
        })
        .map_err(|e| format!("cannot spawn reader thread for shard {shard}: {e}"))?;
    Ok((Worker { shard, child }, reader, console))
}

/// Loads every shard sidecar in shard order, merges them, and writes the
/// sweep-level `BENCH_*.json` into the output directory.
fn merge_shards(config: &SweepConfig, shard_count: usize) -> Result<PathBuf, String> {
    let mut sidecars = Vec::with_capacity(shard_count);
    for shard in 0..shard_count {
        let dir = shard_dir(config, shard);
        let path = find_sidecar(&dir).ok_or_else(|| {
            format!(
                "shard {shard} finished without a sidecar in {}",
                dir.display()
            )
        })?;
        sidecars.push(Sidecar::load(&path)?);
    }
    let merged = merge_sidecars(&sidecars)?;
    let path = config
        .out_dir
        .join(format!("BENCH_{}.json", sidecars[0].experiment));
    std::fs::write(&path, merged + "\n")
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// Stderr dashboard painter: in-place ANSI redraw on a terminal, silent
/// otherwise (state transitions still reach the user through the final
/// summary, and CI logs stay readable).
struct Painter {
    quiet: bool,
    ansi: bool,
    last_height: usize,
    last_draw: Option<Instant>,
}

impl Painter {
    fn new(quiet: bool) -> Painter {
        use std::io::IsTerminal;
        Painter {
            quiet,
            ansi: std::io::stderr().is_terminal(),
            last_height: 0,
            last_draw: None,
        }
    }

    fn maybe_draw(&mut self, monitor: &Monitor) {
        if self.quiet || !self.ansi {
            return;
        }
        let due = self
            .last_draw
            .map_or(true, |at| at.elapsed() >= Duration::from_millis(250));
        if due {
            self.draw(monitor);
        }
    }

    fn draw(&mut self, monitor: &Monitor) {
        let rendered = monitor.render();
        let mut err = std::io::stderr().lock(); // lint: allow(lock) stderr lock, not a poisonable mutex
        if self.last_height > 0 {
            let _ = write!(err, "\x1b[{}A\x1b[J", self.last_height);
        }
        let _ = err.write_all(rendered.as_bytes());
        let _ = err.flush();
        self.last_height = rendered.lines().count();
        self.last_draw = Some(Instant::now());
    }

    fn finish(&mut self, monitor: &Monitor) {
        if self.quiet {
            return;
        }
        if self.ansi {
            self.draw(monitor);
        } else {
            // lint: allow(lock) stderr lock, not a poisonable mutex
            let _ = write!(std::io::stderr().lock(), "{}", monitor.render());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_validate_and_default() {
        let config = SweepConfig::new("e1", PathBuf::from("/bin/false"), 0, PathBuf::from("/tmp"));
        assert!(run_sweep(&config).is_err(), "0 shards rejected");
        let config = SweepConfig::new("e1", PathBuf::from("x"), 3, PathBuf::from("y"));
        assert_eq!(config.parallel, 0, "0 = all shards at once");
        assert!(!config.resume);
        assert_eq!(config.stall_timeout, Duration::from_secs(10));
    }

    #[test]
    fn manifest_guards_resume_shape() {
        let dir = std::env::temp_dir().join(format!("sweep-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut config = SweepConfig::new("e1", PathBuf::from("x"), 3, dir.clone());
        check_manifest(&config).unwrap();
        config.resume = true;
        assert!(check_manifest(&config).is_ok(), "same shape resumes");
        config.shards = 4;
        let err = check_manifest(&config).unwrap_err();
        assert!(err.contains("resume mismatch"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_need_marker_and_sidecar() {
        let dir = std::env::temp_dir().join(format!("sweep-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(!checkpoint_valid(&dir), "empty dir");
        std::fs::write(dir.join("DONE"), "ok\n").unwrap();
        assert!(!checkpoint_valid(&dir), "marker without sidecar");
        std::fs::write(
            dir.join("BENCH_e1.json"),
            r#"{"experiment": "e1", "phases": [], "counters": {"a": 1}}"#,
        )
        .unwrap();
        assert!(checkpoint_valid(&dir), "marker + sidecar");
        std::fs::write(dir.join("BENCH_e1_again.json"), "{}").unwrap();
        assert!(!checkpoint_valid(&dir), "ambiguous sidecars rejected");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
