//! Plain edge-list file format: `u v` per line, `#` comments, blank lines
//! ignored, vertex count inferred from the largest endpoint (or an
//! optional `n <count>` header to declare trailing isolated vertices).

use std::path::Path;

use defender_graph::{Graph, GraphBuilder};

/// Parses an edge list from text.
///
/// # Errors
///
/// Reports the line number of the first malformed entry.
pub fn parse(text: &str) -> Result<Graph, String> {
    let mut declared_n: Option<usize> = None;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let first = parts.next().expect("non-empty line has a token");
        if first == "n" {
            let value = parts
                .next()
                .ok_or_else(|| format!("line {}: `n` header needs a count", lineno + 1))?;
            declared_n = Some(
                value
                    .parse()
                    .map_err(|_| format!("line {}: invalid vertex count", lineno + 1))?,
            );
            continue;
        }
        let u: usize = first
            .parse()
            .map_err(|_| format!("line {}: invalid endpoint `{first}`", lineno + 1))?;
        let v: usize = parts
            .next()
            .ok_or_else(|| format!("line {}: missing second endpoint", lineno + 1))?
            .parse()
            .map_err(|_| format!("line {}: invalid endpoint", lineno + 1))?;
        if parts.next().is_some() {
            return Err(format!("line {}: trailing tokens", lineno + 1));
        }
        if u == v {
            return Err(format!("line {}: self-loop ({u}, {u})", lineno + 1));
        }
        edges.push((u, v));
    }
    let needed = edges.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(0);
    let n = declared_n.unwrap_or(needed).max(needed);
    let mut builder = GraphBuilder::new(n);
    for (u, v) in edges {
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

/// Renders a graph as edge-list text (with an `n` header).
#[must_use]
pub fn render(graph: &Graph) -> String {
    let mut out = format!(
        "# {} vertices, {} edges\nn {}\n",
        graph.vertex_count(),
        graph.edge_count(),
        graph.vertex_count()
    );
    for e in graph.edges() {
        let ep = graph.endpoints(e);
        out.push_str(&format!("{} {}\n", ep.u().index(), ep.v().index()));
    }
    out
}

/// Reads and parses a graph file (edge-list format).
///
/// # Errors
///
/// IO and parse errors as strings (CLI-level reporting).
pub fn read(path: &Path) -> Result<Graph, String> {
    read_format(path, None)
}

/// Reads a graph file in the given format (`None`/`"edges"` for the edge
/// list, `"graph6"` for graph6).
///
/// # Errors
///
/// IO, parse and unknown-format errors as strings.
pub fn read_format(path: &Path, format: Option<&str>) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    match format {
        None | Some("edges") => parse(&text),
        Some("graph6") => defender_graph::graph6::from_graph6(&text).map_err(|e| e.to_string()),
        Some(other) => Err(format!("unknown format `{other}` (use edges or graph6)")),
    }
}

/// Writes a graph file (edge-list format).
///
/// # Errors
///
/// IO errors as strings.
pub fn write(path: &Path, graph: &Graph) -> Result<(), String> {
    write_format(path, graph, None)
}

/// Writes a graph file in the given format.
///
/// # Errors
///
/// IO and unknown-format errors as strings.
pub fn write_format(path: &Path, graph: &Graph, format: Option<&str>) -> Result<(), String> {
    let text = match format {
        None | Some("edges") => render(graph),
        Some("graph6") => {
            let mut s = defender_graph::graph6::to_graph6(graph);
            s.push('\n');
            s
        }
        Some(other) => return Err(format!("unknown format `{other}` (use edges or graph6)")),
    };
    std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_graph::generators;

    #[test]
    fn round_trip() {
        let g = generators::petersen();
        let back = parse(&render(&g)).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g = parse("# a triangle\n0 1\n\n1 2 # chord\n0 2\n").unwrap();
        assert_eq!((g.vertex_count(), g.edge_count()), (3, 3));
    }

    #[test]
    fn header_declares_isolated_vertices() {
        let g = parse("n 5\n0 1\n").unwrap();
        assert_eq!(g.vertex_count(), 5);
        assert!(g.has_isolated_vertex());
    }

    #[test]
    fn header_never_shrinks() {
        let g = parse("n 2\n0 4\n").unwrap();
        assert_eq!(g.vertex_count(), 5);
    }

    #[test]
    fn malformed_lines_report_position() {
        assert!(parse("0\n").unwrap_err().contains("line 1"));
        assert!(parse("0 1\nx y\n").unwrap_err().contains("line 2"));
        assert!(parse("0 0\n").unwrap_err().contains("self-loop"));
        assert!(parse("0 1 2\n").unwrap_err().contains("trailing"));
        assert!(parse("n\n").unwrap_err().contains("count"));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = parse("").unwrap();
        assert_eq!(g.vertex_count(), 0);
    }
}
