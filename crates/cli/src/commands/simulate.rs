//! `defender simulate` — Monte-Carlo play of the computed equilibrium.

use defender_core::bipartite::a_tuple_bipartite;
use defender_core::covering_ne::covering_ne;
use defender_core::model::{MixedConfig, TupleGame};
use defender_core::simulate::{SimulationConfig, Simulator};
use defender_graph::Graph;
use defender_num::Ratio;

use crate::args::Options;
use crate::edgelist;

/// Picks the best available structural equilibrium for the instance:
/// k-matching where the graph is bipartite, otherwise the covering NE.
/// Returns the configuration, its exact gain, and the family name used.
pub fn pick_equilibrium(
    game: &TupleGame<'_>,
) -> Result<(MixedConfig, Ratio, &'static str), String> {
    if let Ok(ne) = a_tuple_bipartite(game) {
        return Ok((ne.config().clone(), ne.defender_gain(), "k-matching"));
    }
    match covering_ne(game) {
        Ok(ne) => Ok((ne.config().clone(), ne.defender_gain(), "covering")),
        Err(e) => Err(format!(
            "no structural equilibrium available for this instance ({e})"
        )),
    }
}

/// The simulation report as a string (pure function, testable without IO).
pub fn report(
    graph: &Graph,
    k: usize,
    nu: usize,
    rounds: u64,
    seed: u64,
) -> Result<String, String> {
    use std::fmt::Write as _;
    let game = TupleGame::new(graph, k, nu).map_err(|e| e.to_string())?;
    let (config, exact_gain, family) = pick_equilibrium(&game)?;
    let outcome = Simulator::new(&game, &config).run(&SimulationConfig { rounds, seed });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "equilibrium family: {family}, exact defender gain = {exact_gain}"
    );
    let _ = writeln!(
        out,
        "simulated {rounds} rounds: mean arrests = {:.4} (error {:.4})",
        outcome.mean_caught,
        outcome.gain_error(exact_gain)
    );
    let mean_escape: f64 = if outcome.escape_frequency.is_empty() {
        0.0
    } else {
        outcome.escape_frequency.iter().sum::<f64>() / outcome.escape_frequency.len() as f64
    };
    let _ = writeln!(out, "mean empirical escape frequency = {mean_escape:.4}");
    Ok(out)
}

/// Runs the subcommand.
pub fn run(options: &Options) -> Result<(), String> {
    let graph = edgelist::read(std::path::Path::new(options.required("graph")?))?;
    let k: usize = options.required_parse("k")?;
    let nu: usize = options.required_parse("nu")?;
    let rounds: u64 = options.parse_or("rounds", 10_000)?;
    let seed: u64 = options.parse_or("seed", 2006)?;
    print!("{}", report(&graph, k, nu, rounds, seed)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_graph::generators;

    #[test]
    fn simulates_bipartite_instance() {
        let g = generators::cycle(8);
        let text = report(&g, 2, 4, 5_000, 7).unwrap();
        assert!(text.contains("k-matching"));
        assert!(text.contains("mean arrests"));
    }

    #[test]
    fn falls_back_to_covering_on_petersen() {
        let g = generators::petersen();
        let text = report(&g, 2, 4, 2_000, 7).unwrap();
        assert!(text.contains("covering"));
    }

    #[test]
    fn reports_when_nothing_applies() {
        // Odd cycle: not bipartite and no perfect matching.
        let g = generators::cycle(5);
        assert!(report(&g, 1, 1, 100, 7).is_err());
    }

    #[test]
    fn simulation_is_reproducible() {
        let g = generators::grid(2, 3);
        let a = report(&g, 2, 3, 2_000, 9).unwrap();
        let b = report(&g, 2, 3, 2_000, 9).unwrap();
        assert_eq!(a, b);
    }
}
