//! `defender generate` — write a graph family to an edge-list file.

use defender_num::rng::StdRng;

use defender_graph::{generators, Graph};

use crate::args::Options;
use crate::edgelist;

/// Builds the requested family (pure function, testable without IO).
pub fn build(options: &Options) -> Result<Graph, String> {
    let family = options.required("family")?;
    let seed: u64 = options.parse_or("seed", 2006)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = match family {
        "path" => generators::path(options.required_parse("n")?),
        "cycle" => generators::cycle(options.required_parse("n")?),
        "star" => generators::star(options.required_parse("leaves")?),
        "wheel" => generators::wheel(options.required_parse("n")?),
        "complete" => generators::complete(options.required_parse("n")?),
        "complete-bipartite" => generators::complete_bipartite(
            options.required_parse("a")?,
            options.required_parse("b")?,
        ),
        "grid" => generators::grid(
            options.required_parse("rows")?,
            options.required_parse("cols")?,
        ),
        "hypercube" => generators::hypercube(options.required_parse("dim")?),
        "petersen" => generators::petersen(),
        "ladder" => generators::ladder(options.required_parse("n")?),
        "tree" => generators::random_tree(options.required_parse("n")?, &mut rng),
        "gnp" => generators::gnp_connected(
            options.required_parse("n")?,
            options.required_parse("p")?,
            &mut rng,
        ),
        "bipartite" => generators::random_bipartite(
            options.required_parse("a")?,
            options.required_parse("b")?,
            options.required_parse("p")?,
            &mut rng,
        ),
        other => return Err(format!("unknown family `{other}`")),
    };
    Ok(graph)
}

/// Runs the subcommand.
pub fn run(options: &Options) -> Result<(), String> {
    let graph = build(options)?;
    let out = options.required("out")?;
    edgelist::write(std::path::Path::new(out), &graph)?;
    println!(
        "wrote {}: {} vertices, {} edges",
        out,
        graph.vertex_count(),
        graph.edge_count()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options(parts: &[&str]) -> Options {
        Options::parse(&parts.iter().map(ToString::to_string).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn builds_every_family() {
        for parts in [
            vec!["--family", "path", "--n", "5"],
            vec!["--family", "cycle", "--n", "5"],
            vec!["--family", "star", "--leaves", "4"],
            vec!["--family", "wheel", "--n", "5"],
            vec!["--family", "complete", "--n", "4"],
            vec!["--family", "complete-bipartite", "--a", "2", "--b", "3"],
            vec!["--family", "grid", "--rows", "2", "--cols", "3"],
            vec!["--family", "hypercube", "--dim", "3"],
            vec!["--family", "petersen"],
            vec!["--family", "ladder", "--n", "3"],
            vec!["--family", "tree", "--n", "9"],
            vec!["--family", "gnp", "--n", "9", "--p", "0.2"],
            vec![
                "--family",
                "bipartite",
                "--a",
                "3",
                "--b",
                "4",
                "--p",
                "0.5",
            ],
        ] {
            let g = build(&options(&parts)).unwrap_or_else(|e| panic!("{parts:?}: {e}"));
            assert!(g.vertex_count() > 0);
        }
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = build(&options(&[
            "--family", "gnp", "--n", "12", "--p", "0.3", "--seed", "5",
        ]))
        .unwrap();
        let b = build(&options(&[
            "--family", "gnp", "--n", "12", "--p", "0.3", "--seed", "5",
        ]))
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_family_rejected() {
        assert!(build(&options(&["--family", "moebius"])).is_err());
    }

    #[test]
    fn missing_params_reported() {
        let err = build(&options(&["--family", "grid", "--rows", "2"])).unwrap_err();
        assert!(err.contains("--cols"));
    }
}
