//! `defender value` — exact game value on an arbitrary graph via the
//! rational LP (single-attacker zero-sum reduction).

use defender_cache::EquilibriumCache;
use defender_core::bipartite::a_tuple_bipartite_report;
use defender_core::defense::defense_ratio_lower_bound;
use defender_core::model::TupleGame;
use defender_core::solve::solve_exact;
use defender_graph::Graph;

use crate::args::Options;
use crate::edgelist;

/// The value report as a string (pure function, testable without IO).
/// With a cache, the solve routes through the canonical-form memo — the
/// report text is identical either way.
pub fn report(
    graph: &Graph,
    k: usize,
    limit: usize,
    cache: Option<&EquilibriumCache>,
) -> Result<String, String> {
    use std::fmt::Write as _;
    let game = TupleGame::new(graph, k, 1).map_err(|e| e.to_string())?;
    let exact = match cache {
        Some(cache) => cache.solve(&game, limit),
        None => solve_exact(&game, limit),
    }
    .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "exact game value (catch probability): {} = {:.6}",
        exact.value,
        exact.value.to_f64()
    );
    let _ = writeln!(
        out,
        "optimal attacker support: {:?}",
        exact.config.vp_support_union()
    );
    let _ = writeln!(
        out,
        "optimal defender support: {} tuples over edges {:?}",
        exact.config.tp_support().len(),
        exact.config.support_edges()
    );
    let _ = writeln!(
        out,
        "defense ratio 1/value = {}; universal lower bound n/(2k) = {}",
        exact
            .value
            .recip()
            .map(|r| r.to_string())
            .unwrap_or_else(|_| "∞".into()),
        defense_ratio_lower_bound(&game)
    );
    // Structural cross-check: on bipartite instances the constructive
    // A_tuple equilibrium must reproduce the LP's hit probability.
    if let Ok(structural) = a_tuple_bipartite_report(&game) {
        let _ = writeln!(out, "structural cross-check — {}", structural.summary());
        let agrees = structural.ne.hit_probability() == exact.value;
        let _ = writeln!(out, "structural hit probability matches LP value: {agrees}");
    }
    Ok(out)
}

/// Runs the subcommand.
pub fn run(options: &Options) -> Result<(), String> {
    let graph = edgelist::read(std::path::Path::new(options.required("graph")?))?;
    let k: usize = options.required_parse("k")?;
    let limit: usize = options.parse_or("limit", 200_000)?;
    let cache = options
        .get("cache")
        .map(|dir| EquilibriumCache::open(std::path::Path::new(dir)).map_err(|e| e.to_string()))
        .transpose()?;
    print!("{}", report(&graph, k, limit, cache.as_ref())?);
    if let Some(cache) = &cache {
        cache.persist().map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_graph::generators;

    #[test]
    fn odd_cycle_value() {
        let g = generators::cycle(5);
        let text = report(&g, 1, 100_000, None).unwrap();
        assert!(text.contains("2/5"), "{text}");
        assert!(text.contains("lower bound n/(2k) = 5/2"));
        // Odd cycle: no bipartite structural route, so no cross-check line.
        assert!(!text.contains("structural cross-check"));
    }

    #[test]
    fn bipartite_value_cross_checks_structural_route() {
        let g = generators::cycle(6);
        let text = report(&g, 1, 100_000, None).unwrap();
        assert!(
            text.contains("structural cross-check — A_tuple: |IS| = 3"),
            "{text}"
        );
        assert!(
            text.contains("structural hit probability matches LP value: true"),
            "{text}"
        );
    }

    #[test]
    fn cached_report_matches_the_direct_report() {
        let dir = std::env::temp_dir().join(format!("cli-value-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = generators::cycle(5);
        let direct = report(&g, 1, 100_000, None).unwrap();
        let cache = EquilibriumCache::open(&dir).unwrap();
        let cold = report(&g, 1, 100_000, Some(&cache)).unwrap();
        let warm = report(&g, 1, 100_000, Some(&cache)).unwrap();
        assert_eq!(direct, cold);
        assert_eq!(direct, warm);
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn guard_propagates() {
        let g = generators::complete(9);
        assert!(report(&g, 9, 100, None).is_err());
    }
}
