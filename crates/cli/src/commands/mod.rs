//! The CLI subcommands.

pub mod analyze;
pub mod bench;
pub mod convert;
pub mod generate;
pub mod help;
pub mod lint;
pub mod profile;
pub mod serve;
pub mod simulate;
pub mod sweep;
pub mod value;
