//! `defender profile` — trace analytics over a saved `--trace` export.
//!
//! ```text
//! defender profile <trace.json> [--format table|json] [--top N] [--sidecar]
//! ```
//!
//! Loads a Chrome trace-event JSON file (written by `--trace` on any
//! experiment binary or `defender` command), replays it through
//! `defender-profile`, and prints the span table, text flamegraph, and
//! worker-utilization analysis (`--format table`, the default) or the
//! full machine-readable profile (`--format json`). `--sidecar`
//! additionally writes `BENCH_profile_<stem>.json` in the current
//! directory so `defender bench diff` can gate span-level regressions.
//!
//! The wall-clock accounting invariant — every lane's root spans sum to
//! at most the trace duration — is always enforced: a violating trace
//! exits with code 2, which is the CI profile gate.

use std::path::Path;
use std::process::ExitCode;

use crate::args::Options;

const USAGE: &str =
    "usage:\n  defender profile <trace.json> [--format table|json] [--top N] [--sidecar]";

/// Runs the subcommand.
///
/// # Errors
///
/// Returns a usage error for malformed arguments and an I/O/parse error
/// when the trace cannot be read; an accounting violation is an exit-2
/// outcome, not an error.
pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    // `--sidecar` is a bare flag; strip it before the `--key value`
    // option parser sees the token stream.
    let mut sidecar = false;
    let tokens: Vec<String> = argv
        .iter()
        .filter(|token| {
            if token.as_str() == "--sidecar" {
                sidecar = true;
                false
            } else {
                true
            }
        })
        .cloned()
        .collect();
    let cut = tokens
        .iter()
        .position(|token| token.starts_with("--"))
        .unwrap_or(tokens.len());
    let [trace_path] = &tokens[..cut] else {
        return Err(format!("`profile` needs one trace file\n{USAGE}"));
    };
    let trace_path = trace_path.clone();
    let options = Options::parse(&tokens[cut..])?;
    let top: usize = options.parse_or("top", 0)?;
    let format = options.get("format").unwrap_or("table");
    if !matches!(format, "table" | "json") {
        return Err(format!(
            "option `--format` must be `table` or `json`, got `{format}`"
        ));
    }

    let text = std::fs::read_to_string(&trace_path)
        .map_err(|e| format!("cannot read {trace_path}: {e}"))?;
    let input = defender_profile::TraceInput::from_chrome_trace(&text)
        .map_err(|e| format!("{trace_path}: invalid trace: {e}"))?;
    let profile = defender_profile::Profile::build(&input);

    match format {
        "json" => println!("{}", defender_profile::to_json(&profile)),
        _ => print!("{}", defender_profile::to_table(&profile, top)),
    }
    if sidecar {
        let stem = Path::new(&trace_path)
            .file_stem()
            .map_or_else(|| "trace".to_string(), |s| s.to_string_lossy().into_owned());
        let path = format!("BENCH_profile_{stem}.json");
        let json = defender_profile::sidecar_json(&profile, &format!("profile_{stem}"));
        std::fs::write(&path, json + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(message) = &profile.overrun {
        eprintln!("error: {trace_path}: wall-clock accounting violated: {message}");
        return Ok(ExitCode::from(2));
    }
    Ok(ExitCode::SUCCESS)
}
