//! `defender serve` — cache-first batched equilibrium serving over a
//! std-only HTTP front (see DESIGN.md §16).
//!
//! ```text
//! defender serve --addr 127.0.0.1:8080 --cache ./memo
//! ```
//!
//! Prints one `listening <addr>` line once the socket is bound (the CI
//! gate and scripts parse it — `--addr 127.0.0.1:0` picks an ephemeral
//! port), then blocks until a client POSTs `/v1/shutdown`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use defender_serve::{ServeConfig, Server};

use crate::args::Options;

const USAGE: &str = "usage:\n  \
    defender serve --addr <HOST:PORT> [--cache <DIR>] [--jobs <N>] [--batch-window-ms <W>]\n                 \
    [--max-queue <Q>] [--max-body <BYTES>] [--deadline-ms <D>] [--max-connections <C>]";

/// Runs the `serve` command: builds a [`ServeConfig`] from the flags,
/// starts the server, and blocks until it is shut down over HTTP.
///
/// # Errors
///
/// Usage errors for malformed flags; bind and cache-open failures.
pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let options = Options::parse(argv).map_err(|e| format!("{e}\n{USAGE}"))?;
    let mut config = ServeConfig {
        addr: options.required("addr")?.to_owned(),
        cache_dir: options.get("cache").map(PathBuf::from),
        ..ServeConfig::default()
    };
    config.jobs = options.parse_or("jobs", config.jobs)?;
    if let Some(window) = options.get("batch-window-ms") {
        let ms: u64 = window
            .parse()
            .map_err(|_| format!("bad --batch-window-ms `{window}`"))?;
        config.batch_window = Duration::from_millis(ms);
    }
    if let Some(deadline) = options.get("deadline-ms") {
        let ms: u64 = deadline
            .parse()
            .map_err(|_| format!("bad --deadline-ms `{deadline}`"))?;
        config.deadline = Duration::from_millis(ms);
    }
    config.max_queue = options.parse_or("max-queue", config.max_queue)?;
    config.max_body = options.parse_or("max-body", config.max_body)?;
    config.max_vertices = options.parse_or("max-vertices", config.max_vertices)?;
    config.max_connections = options.parse_or("max-connections", config.max_connections)?;
    if config.max_queue == 0 {
        return Err("option `--max-queue` must be at least 1".to_string());
    }
    let server = Server::start(config).map_err(|e| format!("cannot start server: {e}"))?;
    println!("listening {}", server.addr());
    server.wait();
    eprintln!("server stopped");
    Ok(ExitCode::SUCCESS)
}
