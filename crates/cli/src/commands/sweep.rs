//! `defender sweep` — run one experiment sharded across worker
//! processes, with live telemetry and checkpoint-resume.
//!
//! ```text
//! defender sweep e15 --shards 4
//! defender sweep e15 --shards 4 --resume sweep_e15
//! ```
//!
//! The heavy lifting lives in `defender-sweep` ([`defender_sweep::run_sweep`]);
//! this module owns the argument grammar and worker-binary resolution:
//! the `exp_*` binaries are expected next to the `defender` executable
//! (the cargo target directory in development), overridable with
//! `--bin-dir` for installed layouts.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use defender_sweep::{run_sweep, SweepConfig};

use crate::args::Options;

const USAGE: &str = "usage:\n  \
    defender sweep <experiment> --shards <N> [--out <dir>] [--resume <dir>] [--parallel <M>]\n                \
    [--jobs <J>] [--profile] [--stall-timeout <SECS>] [--bin-dir <dir>] [--quiet]";

/// Runs the `sweep` command.
///
/// # Errors
///
/// Returns usage errors for unknown experiments or malformed flags, and
/// propagates runner failures (spawn errors, failed shards, merge
/// mismatches).
pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let Some((experiment, rest)) = argv.split_first() else {
        return Err(format!(
            "`sweep` needs an experiment name ({})\n{USAGE}",
            defender_sweep::sweepable_experiments().join(", ")
        ));
    };
    let binary_name = defender_sweep::experiment_binary(experiment).ok_or_else(|| {
        format!(
            "experiment `{experiment}` is not sweepable; known: {}\n{USAGE}",
            defender_sweep::sweepable_experiments().join(", ")
        )
    })?;
    // `--profile` and `--quiet` are bare flags; strip them before the
    // `--key value` option parser sees the token stream.
    let mut profile = false;
    let mut quiet = false;
    let option_tokens: Vec<String> = rest
        .iter()
        .filter(|token| match token.as_str() {
            "--profile" => {
                profile = true;
                false
            }
            "--quiet" => {
                quiet = true;
                false
            }
            _ => true,
        })
        .cloned()
        .collect();
    let options = Options::parse(&option_tokens)?;

    let resume_dir = options.get("resume").map(PathBuf::from);
    let out_dir = match (options.get("out").map(PathBuf::from), &resume_dir) {
        (Some(out), Some(resume)) if out != *resume => {
            return Err("options `--out` and `--resume` disagree; pass one of them".to_string())
        }
        (Some(out), _) => out,
        (None, Some(resume)) => resume.clone(),
        (None, None) => PathBuf::from(format!("sweep_{experiment}")),
    };
    let shards: u64 = options.required_parse("shards")?;
    let binary = match options.get("bin-dir") {
        Some(dir) => PathBuf::from(dir).join(binary_name),
        None => sibling_binary(binary_name)?,
    };
    if !binary.exists() {
        return Err(format!(
            "worker binary {} not found; build it with `cargo build --release` \
             or point `--bin-dir` at it",
            binary.display()
        ));
    }

    let mut config = SweepConfig::new(experiment, binary, shards, out_dir);
    config.resume = resume_dir.is_some();
    config.parallel = options.parse_or("parallel", 0usize)?;
    config.profile = profile;
    config.quiet = quiet;
    if let Some(jobs) = options.get("jobs") {
        let jobs: usize = jobs
            .parse()
            .map_err(|_| format!("option `--jobs` needs a positive integer, got `{jobs}`"))?;
        if jobs == 0 {
            return Err("option `--jobs` must be at least 1".to_string());
        }
        config.jobs = Some(jobs);
    }
    let stall_secs: f64 = options.parse_or("stall-timeout", 10.0)?;
    if !stall_secs.is_finite() || stall_secs <= 0.0 {
        return Err("option `--stall-timeout` must be positive seconds".to_string());
    }
    config.stall_timeout = Duration::from_secs_f64(stall_secs);

    let outcome = run_sweep(&config)?;
    if outcome.resumed > 0 {
        eprintln!(
            "resumed {} shard(s) from checkpoints in {}",
            outcome.resumed,
            config.out_dir.display()
        );
    }
    match outcome.merged_sidecar {
        Some(path) => {
            println!("wrote {}", path.display());
            Ok(ExitCode::SUCCESS)
        }
        None => {
            eprintln!(
                "sweep stopped early after {} shard(s); resume with \
                 `defender sweep {experiment} --shards {shards} --resume {}`",
                outcome.completed,
                config.out_dir.display()
            );
            Ok(ExitCode::from(3))
        }
    }
}

/// The worker binary next to the running `defender` executable.
fn sibling_binary(name: &str) -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("cannot locate this executable: {e}"))?;
    let dir = me
        .parent()
        .ok_or("this executable has no parent directory")?;
    Ok(dir.join(name))
}
