//! `defender analyze` — full equilibrium report for one instance.

use defender_core::bipartite::a_tuple_bipartite_report;
use defender_core::characterization::{verify_mixed_ne, VerificationMode};
use defender_core::covering_ne::covering_ne;
use defender_core::gain::quality_of_protection;
use defender_core::model::TupleGame;
use defender_core::pure::{pure_ne_existence, PureNeOutcome};
use defender_core::tree::a_tuple_tree_report;
use defender_core::CoreError;
use defender_graph::{properties, Graph};
use defender_num::Ratio;

use crate::args::Options;
use crate::edgelist;

/// The analysis as a string (pure function, testable without IO).
pub fn report(graph: &Graph, k: usize, nu: usize) -> Result<String, String> {
    use std::fmt::Write as _;
    let game = TupleGame::new(graph, k, nu).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "instance: n = {}, m = {}, k = {k}, nu = {nu}",
        graph.vertex_count(),
        graph.edge_count()
    );
    let bipartite = properties::is_bipartite(graph);
    let tree = defender_matching::tree::is_forest(graph);
    let _ = writeln!(out, "structure: bipartite = {bipartite}, forest = {tree}");

    // Pure equilibria (Theorem 3.1).
    match pure_ne_existence(&game) {
        PureNeOutcome::Exists { cover, .. } => {
            let _ = writeln!(
                out,
                "pure NE: EXISTS (defender plays the {}-edge cover {cover:?})",
                cover.len()
            );
        }
        PureNeOutcome::None { min_cover_size } => {
            let _ = writeln!(
                out,
                "pure NE: none (minimum edge cover needs {min_cover_size} > {k} edges)"
            );
        }
    }

    // Mixed structural equilibria.
    let mixed = if tree {
        a_tuple_tree_report(&game)
    } else {
        a_tuple_bipartite_report(&game)
    };
    match mixed {
        Ok(report) => {
            let ne = &report.ne;
            let check = verify_mixed_ne(&game, ne.config(), VerificationMode::Auto)
                .map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "k-matching NE: verified = {}, quality of protection {}",
                check.is_equilibrium(),
                quality_of_protection(&game, ne.config()),
            );
            let _ = writeln!(out, "{report}");
            let _ = writeln!(
                out,
                "attacker view: escape probability {}",
                Ratio::ONE - ne.hit_probability()
            );
        }
        Err(CoreError::TupleWiderThanSupport { support_size, .. }) => {
            let _ = writeln!(
                out,
                "k-matching NE: none — k = {k} exceeds |IS| = {support_size}"
            );
        }
        Err(CoreError::Graph(defender_graph::GraphError::NotBipartite)) => {
            let _ = writeln!(out, "k-matching NE: not available (graph is not bipartite)");
        }
        Err(e) => {
            let _ = writeln!(out, "k-matching NE: not available ({e})");
        }
    }
    match covering_ne(&game) {
        Ok(ne) => {
            let _ = writeln!(
                out,
                "covering NE (perfect matching): {} tuples, defender gain = {}",
                ne.tuple_count(),
                ne.defender_gain()
            );
        }
        Err(e) => {
            let _ = writeln!(out, "covering NE: not available ({e})");
        }
    }
    Ok(out)
}

/// Runs the subcommand.
pub fn run(options: &Options) -> Result<(), String> {
    let graph = edgelist::read(std::path::Path::new(options.required("graph")?))?;
    let k: usize = options.required_parse("k")?;
    let nu: usize = options.required_parse("nu")?;
    print!("{}", report(&graph, k, nu)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_graph::generators;

    #[test]
    fn bipartite_report_mentions_everything() {
        let g = generators::cycle(8);
        let text = report(&g, 2, 4).unwrap();
        assert!(text.contains("pure NE: none"));
        assert!(text.contains("A_tuple: |IS| = 4"));
        assert!(text.contains("verified = true"));
        assert!(text.contains("step 1: matching NE"));
        assert!(text.contains("covering NE (perfect matching)"));
    }

    #[test]
    fn non_bipartite_report_degrades_gracefully() {
        let g = generators::petersen();
        let text = report(&g, 2, 4).unwrap();
        assert!(text.contains("not bipartite"));
        assert!(
            text.contains("covering NE (perfect matching)"),
            "Petersen has a PM"
        );
    }

    #[test]
    fn tree_route_is_used() {
        let g = generators::star(5);
        let text = report(&g, 2, 3).unwrap();
        assert!(text.contains("forest = true"));
        assert!(text.contains("A_tuple: |IS| = 5"));
        assert!(text.contains("covering NE: not available"));
    }

    #[test]
    fn pure_ne_reported_when_k_large() {
        let g = generators::cycle(6);
        let text = report(&g, 3, 2).unwrap();
        assert!(text.contains("pure NE: EXISTS"));
    }

    #[test]
    fn invalid_width_surfaces() {
        let g = generators::path(3);
        assert!(report(&g, 9, 1).is_err());
    }
}
