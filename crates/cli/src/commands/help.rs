//! `defender help`.

/// Prints usage for every subcommand.
pub fn print() {
    println!(
        "defender — the Tuple model of 'The Power of the Defender' (ICDCS 2006)

USAGE:
  defender generate --family <name> [params] --out <file>
  defender analyze  --graph <file> --k <K> --nu <NU>
  defender simulate --graph <file> --k <K> --nu <NU> [--rounds <R>] [--seed <S>]
  defender value    --graph <file> --k <K> [--limit <TUPLES>]
  defender convert  --in <file> --out <file> [--from <fmt>] [--to <fmt>]
  defender help

Every command also accepts `--metrics json|table`: run with internal
instrumentation enabled and dump the counter/span registry afterwards.

FORMATS: edges (default; `u v` per line) and graph6.

GENERATE FAMILIES (params):
  path            --n <N>
  cycle           --n <N>
  star            --leaves <L>
  wheel           --n <RIM>
  complete        --n <N>
  complete-bipartite --a <A> --b <B>
  grid            --rows <R> --cols <C>
  hypercube       --dim <D>
  petersen
  ladder          --n <RUNGS>
  tree            --n <N> [--seed <S>]
  gnp             --n <N> --p <P> [--seed <S>]        (connected variant)
  bipartite       --a <A> --b <B> --p <P> [--seed <S>]

GRAPH FILE FORMAT:
  one `u v` edge per line; `#` comments; optional `n <count>` header.

EXAMPLES:
  defender generate --family cycle --n 12 --out ring.edges
  defender analyze --graph ring.edges --k 2 --nu 6
  defender simulate --graph ring.edges --k 2 --nu 6 --rounds 100000"
    );
}
