//! `defender help`.

/// Prints usage for every subcommand.
pub fn print() {
    println!(
        "defender — the Tuple model of 'The Power of the Defender' (ICDCS 2006)

USAGE:
  defender generate --family <name> [params] --out <file>
  defender analyze  --graph <file> --k <K> --nu <NU>
  defender simulate --graph <file> --k <K> --nu <NU> [--rounds <R>] [--seed <S>]
  defender value    --graph <file> --k <K> [--limit <TUPLES>]
  defender convert  --in <file> --out <file> [--from <fmt>] [--to <fmt>]
  defender bench diff <baseline.json> <current.json> [--threshold 0.2] [--noise-floor 0.001] [--counters-only]
  defender bench validate-trace <trace.json> [--min-threads 1] [--strict-drops]
  defender profile <trace.json> [--format table|json] [--top N] [--sidecar]
  defender lint [--root <dir>] [--config <file>] [--format text|json] [--sidecar] [--dump-registry]
  defender help

Every command (except `bench` and `lint`) also accepts:
  --metrics json|table    run instrumented; dump the counter/span registry
                          (with p50/p90/p99 estimates) afterwards
  --metrics-out <FILE>    write the metrics JSON to FILE instead of stdout,
                          keeping stdout machine-parseable
  --trace <FILE>          record an event-level timeline and write it as
                          Chrome trace-event JSON (open in Perfetto or
                          chrome://tracing)
  --jobs <N>              worker-pool width for parallel inner loops
                          (default: available parallelism; results are
                          identical for every N)

`bench diff` compares two BENCH_*.json sidecars (written by the
defender-bench experiment binaries) and exits with code 2 when any phase
wall time or counter regresses beyond the threshold; `--counters-only`
judges only the deterministic counters (for cross-machine CI gates).
`bench validate-trace --min-threads N` additionally requires the timeline
to span at least N threads; `--strict-drops` exits with code 2 when the
trace dropped events (ring overflow).

`profile` replays a --trace export through defender-profile: span table
with self/total times and call counts, text flamegraph, per-worker
utilization and critical-path estimate. `--sidecar` writes
BENCH_profile_<stem>.json for `bench diff` span-level gating. Exits with
code 2 when the wall-clock accounting invariant is violated (a lane's
root spans sum past the trace duration). The experiment binaries accept
`--profile` to harvest the same analysis in-process (appended to the run
sidecar) with live heartbeat lines on stderr.

`lint` runs the workspace static-analysis pass (exactness, determinism,
panic-freedom, metric-registry audit; configured by lint.toml) and exits
with code 2 on findings — see DESIGN.md §12.

FORMATS: edges (default; `u v` per line) and graph6.

GENERATE FAMILIES (params):
  path            --n <N>
  cycle           --n <N>
  star            --leaves <L>
  wheel           --n <RIM>
  complete        --n <N>
  complete-bipartite --a <A> --b <B>
  grid            --rows <R> --cols <C>
  hypercube       --dim <D>
  petersen
  ladder          --n <RUNGS>
  tree            --n <N> [--seed <S>]
  gnp             --n <N> --p <P> [--seed <S>]        (connected variant)
  bipartite       --a <A> --b <B> --p <P> [--seed <S>]

GRAPH FILE FORMAT:
  one `u v` edge per line; `#` comments; optional `n <count>` header.

EXAMPLES:
  defender generate --family cycle --n 12 --out ring.edges
  defender analyze --graph ring.edges --k 2 --nu 6
  defender simulate --graph ring.edges --k 2 --nu 6 --rounds 100000"
    );
}
