//! `defender help [topic]`.

/// Dispatches `help` with an optional topic (`defender help sweep`).
/// Unknown topics fall back to the general usage page.
pub fn run(argv: &[String]) {
    match argv.first().map(String::as_str) {
        Some("sweep") => print_sweep(),
        _ => print(),
    }
}

/// Prints usage for every subcommand.
pub fn print() {
    println!(
        "defender — the Tuple model of 'The Power of the Defender' (ICDCS 2006)

USAGE:
  defender generate --family <name> [params] --out <file>
  defender analyze  --graph <file> --k <K> --nu <NU>
  defender simulate --graph <file> --k <K> --nu <NU> [--rounds <R>] [--seed <S>]
  defender value    --graph <file> --k <K> [--limit <TUPLES>]
  defender convert  --in <file> --out <file> [--from <fmt>] [--to <fmt>]
  defender bench diff <baseline.json> <current.json> [--threshold 0.2] [--noise-floor 0.001] [--counters-only] [--format table|json]
  defender bench validate-trace <trace.json> [--min-threads 1] [--strict-drops]
  defender profile <trace.json> [--format table|json] [--top N] [--sidecar]
  defender sweep <experiment> --shards <N> [--resume <dir>] [options]   (see `defender help sweep`)
  defender lint [--root <dir>] [--config <file>] [--format text|json] [--sidecar] [--dump-registry]
  defender help [sweep]

Every command (except `bench`, `lint` and `sweep`) also accepts:
  --metrics json|table    run instrumented; dump the counter/span registry
                          (with p50/p90/p99 estimates) afterwards
  --metrics-out <FILE>    write the metrics JSON to FILE instead of stdout,
                          keeping stdout machine-parseable
  --trace <FILE>          record an event-level timeline and write it as
                          Chrome trace-event JSON (open in Perfetto or
                          chrome://tracing)
  --jobs <N>              worker-pool width for parallel inner loops
                          (default: available parallelism; results are
                          identical for every N)

`bench diff` compares two BENCH_*.json sidecars (written by the
defender-bench experiment binaries) and exits with code 2 when any phase
wall time or counter regresses beyond the threshold; `--counters-only`
judges only the deterministic counters (for cross-machine CI gates);
`--format json` emits the same report as one machine-readable JSON line.
`bench validate-trace --min-threads N` additionally requires the timeline
to span at least N threads; `--strict-drops` exits with code 2 when the
trace dropped events (ring overflow).

`profile` replays a --trace export through defender-profile: span table
with self/total times and call counts, text flamegraph, per-worker
utilization and critical-path estimate. `--sidecar` writes
BENCH_profile_<stem>.json for `bench diff` span-level gating. Exits with
code 2 when the wall-clock accounting invariant is violated (a lane's
root spans sum past the trace duration). The experiment binaries accept
`--profile` to harvest the same analysis in-process (appended to the run
sidecar) with live heartbeat lines on stderr.

`sweep` splits one experiment's instance corpus across worker processes
with live progress, checkpoint-resume and a merged sidecar —
`defender help sweep` has the full story.

`lint` runs the workspace static-analysis pass (exactness, determinism,
panic-freedom, metric-registry audit; configured by lint.toml) and exits
with code 2 on findings — see DESIGN.md §12.

FORMATS: edges (default; `u v` per line) and graph6.

GENERATE FAMILIES (params):
  path            --n <N>
  cycle           --n <N>
  star            --leaves <L>
  wheel           --n <RIM>
  complete        --n <N>
  complete-bipartite --a <A> --b <B>
  grid            --rows <R> --cols <C>
  hypercube       --dim <D>
  petersen
  ladder          --n <RUNGS>
  tree            --n <N> [--seed <S>]
  gnp             --n <N> --p <P> [--seed <S>]        (connected variant)
  bipartite       --a <A> --b <B> --p <P> [--seed <S>]

GRAPH FILE FORMAT:
  one `u v` edge per line; `#` comments; optional `n <count>` header.

EXAMPLES:
  defender generate --family cycle --n 12 --out ring.edges
  defender analyze --graph ring.edges --k 2 --nu 6
  defender simulate --graph ring.edges --k 2 --nu 6 --rounds 100000"
    );
}

/// Prints the `defender help sweep` topic page.
fn print_sweep() {
    println!(
        "defender sweep — sharded experiment sweeps across worker processes

USAGE:
  defender sweep <experiment> --shards <N> [options]

  <experiment>            a sweepable experiment: e1, e15 (short or full
                          binary name, e.g. exp_e1_pure_frontier)

OPTIONS:
  --shards <N>            split the instance corpus into N contiguous
                          windows, one worker process each (required)
  --out <dir>             sweep directory for checkpoints and the merged
                          sidecar (default: sweep_<experiment>)
  --resume <dir>          resume a killed sweep: shards with a sealed
                          checkpoint (DONE marker + valid sidecar) are
                          skipped, the rest re-run; implies --out <dir>
  --parallel <M>          at most M workers at once (default: all shards)
  --jobs <J>              forwarded to each worker's --jobs
  --profile               forward --profile to each worker (in-process
                          span analysis appended to shard sidecars)
  --stall-timeout <SECS>  mark a shard STALLED after this long without
                          telemetry (default: 10; any event revives it)
  --bin-dir <dir>         directory holding the exp_* worker binaries
                          (default: next to the defender executable)
  --quiet                 suppress the live dashboard

HOW IT WORKS:
  The runner re-invokes the experiment binary once per shard with
  `--shard i/N --telemetry`. Each worker computes only its corpus window
  and streams NDJSON telemetry on stdout (heartbeats, per-instance
  progress, metric snapshots, phase transitions, a terminal summary —
  schema in EXPERIMENTS.md). The parent renders a live per-shard
  dashboard on stderr (progress bar, rate, ETA, hottest span, stall
  detection) and merges the per-shard BENCH_*.json sidecars into
  <out>/BENCH_<experiment>.json. The merged `counters` object is
  byte-identical for every --shards width — CI diffs it against the
  single-process run. Worker console output lands in
  <out>/shard_<i>/console.log, stderr in stderr.log.

CHECKPOINTS:
  Each finished shard seals <out>/shard_<i>/ with a DONE marker; a
  killed sweep resumes with --resume and produces byte-identical merged
  counters. Exit code 3 means the sweep stopped before every shard
  finished (resume it); failed shards exit 1 with their stderr paths.

EXAMPLES:
  defender sweep e1 --shards 4
  defender sweep e15 --shards 8 --parallel 2 --jobs 4
  defender sweep e15 --shards 8 --resume sweep_e15"
    );
}
