//! `defender help [topic]`.

/// Dispatches `help` with an optional topic (`defender help sweep`).
/// Unknown topics fall back to the general usage page.
pub fn run(argv: &[String]) {
    match argv.first().map(String::as_str) {
        Some("sweep") => print_sweep(),
        Some("cache") => print_cache(),
        Some("serve") => print_serve(),
        Some("lint") => print_lint(),
        _ => print(),
    }
}

/// Prints usage for every subcommand.
pub fn print() {
    println!(
        "defender — the Tuple model of 'The Power of the Defender' (ICDCS 2006)

USAGE:
  defender generate --family <name> [params] --out <file>
  defender analyze  --graph <file> --k <K> --nu <NU>
  defender simulate --graph <file> --k <K> --nu <NU> [--rounds <R>] [--seed <S>]
  defender value    --graph <file> --k <K> [--limit <TUPLES>] [--cache <DIR>]
  defender convert  --in <file> --out <file> [--from <fmt>] [--to <fmt>]
  defender bench diff <baseline.json> <current.json> [--threshold 0.2] [--noise-floor 0.001] [--counters-only] [--format table|json]
  defender bench validate-trace <trace.json> [--min-threads 1] [--strict-drops]
  defender profile <trace.json> [--format table|json] [--top N] [--sidecar]
  defender sweep <experiment> --shards <N> [--resume <dir>] [options]   (see `defender help sweep`)
  defender lint [--root <dir>] [--config <file>] [--format text|json] [--sidecar] [--dump-registry]
  defender serve --addr <HOST:PORT> [--cache <DIR>] [options]          (see `defender help serve`)
  defender help [sweep|cache|serve|lint]

Every command (except `bench`, `lint` and `sweep`) also accepts:
  --metrics json|table    run instrumented; dump the counter/span registry
                          (with p50/p90/p99 estimates) afterwards
  --metrics-out <FILE>    write the metrics JSON to FILE instead of stdout,
                          keeping stdout machine-parseable
  --trace <FILE>          record an event-level timeline and write it as
                          Chrome trace-event JSON (open in Perfetto or
                          chrome://tracing)
  --jobs <N>              worker-pool width for parallel inner loops
                          (default: available parallelism; results are
                          identical for every N)

`bench diff` compares two BENCH_*.json sidecars (written by the
defender-bench experiment binaries) and exits with code 2 when any phase
wall time or counter regresses beyond the threshold; `--counters-only`
judges only the deterministic counters (for cross-machine CI gates);
`--format json` emits the same report as one machine-readable JSON line.
`bench validate-trace --min-threads N` additionally requires the timeline
to span at least N threads; `--strict-drops` exits with code 2 when the
trace dropped events (ring overflow).

`profile` replays a --trace export through defender-profile: span table
with self/total times and call counts, text flamegraph, per-worker
utilization and critical-path estimate. `--sidecar` writes
BENCH_profile_<stem>.json for `bench diff` span-level gating. Exits with
code 2 when the wall-clock accounting invariant is violated (a lane's
root spans sum past the trace duration). The experiment binaries accept
`--profile` to harvest the same analysis in-process (appended to the run
sidecar) with live heartbeat lines on stderr.

`sweep` splits one experiment's instance corpus across worker processes
with live progress, checkpoint-resume and a merged sidecar —
`defender help sweep` has the full story.

`value --cache <DIR>` (and the experiment binaries' `--cache <DIR>`)
memoizes exact equilibria keyed by the graph's canonical form, so
isomorphic repeats are free — `defender help cache` has the full story.

`lint` runs the workspace static-analysis pass (exactness, determinism,
panic-freedom, concurrency discipline, exact-path panic/cast gating,
unsafe/dependency audits, suppression ageing, metric-registry audit;
configured by lint.toml) and exits with code 2 on findings —
`defender help lint` has the full story.

`serve` answers equilibrium queries over HTTP, cache-first: isomorphic
repeats are served from the memo without touching the LP, distinct
concurrent misses are micro-batched onto the worker pool, and overload
sheds with 429 + Retry-After — `defender help serve` has the full story.

FORMATS: edges (default; `u v` per line) and graph6.

GENERATE FAMILIES (params):
  path            --n <N>
  cycle           --n <N>
  star            --leaves <L>
  wheel           --n <RIM>
  complete        --n <N>
  complete-bipartite --a <A> --b <B>
  grid            --rows <R> --cols <C>
  hypercube       --dim <D>
  petersen
  ladder          --n <RUNGS>
  tree            --n <N> [--seed <S>]
  gnp             --n <N> --p <P> [--seed <S>]        (connected variant)
  bipartite       --a <A> --b <B> --p <P> [--seed <S>]

GRAPH FILE FORMAT:
  one `u v` edge per line; `#` comments; optional `n <count>` header.

EXAMPLES:
  defender generate --family cycle --n 12 --out ring.edges
  defender analyze --graph ring.edges --k 2 --nu 6
  defender simulate --graph ring.edges --k 2 --nu 6 --rounds 100000"
    );
}

/// Prints the `defender help sweep` topic page.
fn print_sweep() {
    println!(
        "defender sweep — sharded experiment sweeps across worker processes

USAGE:
  defender sweep <experiment> --shards <N> [options]

  <experiment>            a sweepable experiment: e1, e15 (short or full
                          binary name, e.g. exp_e1_pure_frontier)

OPTIONS:
  --shards <N>            split the instance corpus into N contiguous
                          windows, one worker process each (required)
  --out <dir>             sweep directory for checkpoints and the merged
                          sidecar (default: sweep_<experiment>)
  --resume <dir>          resume a killed sweep: shards with a sealed
                          checkpoint (DONE marker + valid sidecar) are
                          skipped, the rest re-run; implies --out <dir>
  --parallel <M>          at most M workers at once (default: all shards)
  --jobs <J>              forwarded to each worker's --jobs
  --profile               forward --profile to each worker (in-process
                          span analysis appended to shard sidecars)
  --stall-timeout <SECS>  mark a shard STALLED after this long without
                          telemetry (default: 10; any event revives it)
  --bin-dir <dir>         directory holding the exp_* worker binaries
                          (default: next to the defender executable)
  --quiet                 suppress the live dashboard

HOW IT WORKS:
  The runner re-invokes the experiment binary once per shard with
  `--shard i/N --telemetry`. Each worker computes only its corpus window
  and streams NDJSON telemetry on stdout (heartbeats, per-instance
  progress, metric snapshots, phase transitions, a terminal summary —
  schema in EXPERIMENTS.md). The parent renders a live per-shard
  dashboard on stderr (progress bar, rate, ETA, hottest span, stall
  detection) and merges the per-shard BENCH_*.json sidecars into
  <out>/BENCH_<experiment>.json. The merged `counters` object is
  byte-identical for every --shards width — CI diffs it against the
  single-process run. Worker console output lands in
  <out>/shard_<i>/console.log, stderr in stderr.log.

CHECKPOINTS:
  Each finished shard seals <out>/shard_<i>/ with a DONE marker; a
  killed sweep resumes with --resume and produces byte-identical merged
  counters. Exit code 3 means the sweep stopped before every shard
  finished (resume it); failed shards exit 1 with their stderr paths.

EXAMPLES:
  defender sweep e1 --shards 4
  defender sweep e15 --shards 8 --parallel 2 --jobs 4
  defender sweep e15 --shards 8 --resume sweep_e15"
    );
}

/// Prints the `defender help serve` topic page.
fn print_serve() {
    println!(
        "defender serve — cache-first batched equilibrium serving over HTTP

USAGE:
  defender serve --addr <HOST:PORT> [options]

  Prints one `listening <addr>` line once the socket is bound
  (`--addr 127.0.0.1:0` picks an ephemeral port), then blocks until a
  client POSTs /v1/shutdown.

OPTIONS:
  --addr <HOST:PORT>      bind address (required)
  --cache <DIR>           persistent equilibrium memo (see `defender
                          help cache`); in-memory when absent
  --jobs <N>              worker-pool width for batched solves
                          (default: available parallelism)
  --batch-window-ms <W>   linger this long to micro-batch distinct
                          concurrent misses (default: 5)
  --max-queue <Q>         bound on queued solve classes; requests shed
                          with 429 past the ¾ watermark (default: 64)
  --max-body <BYTES>      request body bound, 413 beyond it
                          (default: 65536)
  --deadline-ms <D>       per-request solve deadline, 503 beyond it
                          (default: 10000)
  --max-vertices <V>      largest instance the server will solve,
                          422 beyond it (default: 64)
  --max-connections <C>   concurrent-connection bound, 503 beyond it
                          (default: 64)

ENDPOINTS:
  POST /v1/solve     body {{\"graph6\": ..., \"k\": K, \"nu\": NU}} or
                     {{\"edges\": [[u,v], ...], \"n\": N, \"k\": K, \"nu\": NU}};
                     answers the exact mixed NE, pure-NE existence, the
                     A-tuple route when it applies, both best responses,
                     and a \"cache\" field (hit | miss | coalesced)
  GET  /v1/metrics   live obs snapshot + the judged (warmth-invariant)
                     counter view reconstructed from stored per-class
                     deltas over the served classes
  GET  /v1/healthz   liveness: status, cached classes, connections
  POST /v1/shutdown  graceful stop (drains, flushes the cache sidecar)

HOW IT WORKS:
  Every request is canonicalized and probed against the equilibrium
  cache first: isomorphic repeats are pure lookups (no LP, no replay —
  a warm server shows zero live lp.* activity). Concurrent requests for
  the same canonical class coalesce onto one in-flight solve; distinct
  misses inside the batch window are solved as one parallel batch on
  the defender-par pool. Bounded queues govern overload: past the
  watermark requests shed immediately with 429 + Retry-After rather
  than queueing without bound. Errors are typed JSON
  ({{\"error\": {{\"kind\", \"message\"}}}}) with the graph6 decode kinds
  surfaced verbatim (TrailingData, NonzeroPadding, ...).

  The exp_serve_load generator drives a seeded isomorph-heavy mix at a
  running server and writes BENCH_serve.json whose judged counters are
  byte-identical cold vs warm — EXPERIMENTS.md documents the schema.

EXAMPLES:
  defender serve --addr 127.0.0.1:8080 --cache ./memo
  exp_serve_load --addr 127.0.0.1:8080 --expect cold --shutdown"
    );
}

/// Prints the `defender help lint` topic page.
fn print_lint() {
    println!(
        "defender lint — the workspace static-analysis pass

USAGE:
  defender lint [--root <dir>] [--config <file>] [--format text|json]
                [--sidecar] [--dump-registry]

  Exit codes: 0 clean, 2 findings, 1 usage/I-O error. `--format json`
  emits the machine-readable report (top-level field order is a pinned
  contract), `--sidecar` writes BENCH_lint.json (finding counts per
  rule, bench-diffable), `--dump-registry` regenerates the static part
  of crates/obs/metrics_registry.txt from source.

RULE FAMILIES (scopes and keys in lint.toml; DESIGN.md §12 and §17):
  exactness     no f64/f32 idents or float literals in the equilibrium
                crates — the paper's guarantees are exact-rational
  determinism   no wall-clock or randomized-hash constructs (Instant,
                HashMap, ...) outside annotated sites
  panic         every unwrap/expect/panic! in library code removed or
                annotated with the invariant that makes it unreachable
  panic2        item-aware: bare indexing, split_at, slice patterns and
                non-literal / or % are findings *inside exact-path fns*
                (those that transitively touch Ratio, by an approximate
                per-crate call graph) — allow(index) / allow(arith)
  cast          narrowing `as` casts: u8..i32 targets anywhere in scope,
                u64/i64 only in exact-path fns; provably-fitting integer
                literals are exempt — allow(cast)
  concurrency   Ordering::Relaxed/SeqCst need a written reason
                (allow(ordering)) or an ordering_allow listing; argless
                .lock()/.read()/.write() must recover poisoning via
                PoisonError::into_inner or carry allow(lock);
                thread::spawn/scope/Builder confined to spawn_allow
                crates — allow(spawn) elsewhere
  unsafe        any `unsafe` token in scope is a finding (the workspace
                allowlist is empty and CI keeps it so)
  deps          any non-workspace dependency in any Cargo.toml is a
                finding — the std-only offline build is enforced
  metrics       counter!/gauge!/histogram!/span! literals cross-checked
                against the registry, EXPERIMENTS.md and the committed
                baselines
  unused_allow  suppression ageing: an allow that suppressed nothing is
                itself a finding — stale annotations cannot linger

ANNOTATION GRAMMAR:
  // lint: allow(<rule>) <reason>    trailing: covers its own line
                                     standalone: covers the next line
  The reason is mandatory (a bare allow is an `annotation` finding);
  test code is exempt from every rule, so annotations there are inert.

CI:
  ci.sh runs `defender lint --sidecar` as a hard gate and bench-diffs
  the sidecar against baselines/BENCH_lint.json --counters-only, so a
  silent change in what the linter sees is a reviewed event; the
  workspace-clean state is also pinned as a regular cargo test.

EXAMPLES:
  defender lint
  defender lint --format json | head -1
  defender lint --sidecar && defender bench diff \\
      baselines/BENCH_lint.json BENCH_lint.json --counters-only"
    );
}

/// Prints the `defender help cache` topic page.
fn print_cache() {
    println!(
        "defender cache — equilibrium memoization keyed by canonical graph form

USAGE:
  defender value --graph <file> --k <K> --cache <DIR>
  exp_e13_exact_value --cache <DIR>        (any exp_* binary)
  exp_e15_value_atlas --cache <DIR>

WHAT IT DOES:
  Every exact LP solve is keyed by (canonical graph6, k, nu): the
  instance is reduced to a canonical labeling (iterative color
  refinement with individualization, exact at solved sizes), the
  canonical representative is solved once, and every isomorphic
  instance thereafter — relabeled copies included — reuses the stored
  equilibrium, mapped back through the inverse permutation. On a miss,
  equilibrium supports found by early-exit enumeration warm-start the
  LP at its optimal basis, so even first-time solves pivot less.

THE SIDECAR:
  <DIR>/equilibria.json, written at the end of the run:
    {{\"format\": \"defender-cache/v1\", \"entries\": [
      {{\"graph6\": ..., \"k\": K, \"nu\": NU, \"value\": \"p/q\",
       \"attacker\": [{{\"vertex\": v, \"p\": \"p/q\"}}, ...],
       \"defender\": [{{\"edges\": [[u,v], ...], \"p\": \"p/q\"}}, ...],
       \"counters\": [{{\"name\": ..., \"delta\": N}}, ...]}}, ...]}}
  Rationals are exact \"p/q\" strings; reloading round-trips them
  bit-for-bit. Entries loaded from disk are UNTRUSTED: on first use
  each is re-proved by the exact Nash verifier on its canonical game;
  a stale or hand-edited entry is recomputed, never served.

TELEMETRY:
  Counter determinism survives caching by delta replay: the canonical
  solve's counter ticks are captured into the entry and replayed on
  every lookup (hit or miss), so the sidecar's jobs-invariant counters
  are byte-identical no matter how warm the cache is. The cache's own
  run-variant state — cache.hits, cache.misses, cache.canon_ns — lands
  in the sidecar's parallelism section, which `bench diff` never judges.

EXAMPLES:
  defender value --graph ring.edges --k 2 --cache ./memo
  exp_e15_value_atlas --cache ./memo     # first run fills the memo
  exp_e15_value_atlas --cache ./memo     # second run: cache.misses = 0"
    );
}
