//! `defender lint` — the workspace static-analysis pass.
//!
//! Thin wrapper over `defender_lint::run`: same flags, same exit codes
//! (0 clean, 2 findings, 1 error) as the standalone `defender-lint`
//! binary, so CI can gate on either entry point.

use std::process::ExitCode;

/// Runs the lint driver with the raw (positional-friendly) arguments.
///
/// # Errors
///
/// Propagates usage and I/O errors from the lint driver.
pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let code = defender_lint::run(argv)?;
    Ok(ExitCode::from(code))
}
