//! `defender convert` — translate between graph file formats.

use crate::args::Options;
use crate::edgelist;

/// Runs the subcommand.
pub fn run(options: &Options) -> Result<(), String> {
    let input = options.required("in")?;
    let output = options.required("out")?;
    let graph = edgelist::read_format(std::path::Path::new(input), options.get("from"))?;
    edgelist::write_format(std::path::Path::new(output), &graph, options.get("to"))?;
    println!(
        "converted {input} -> {output} ({} vertices, {} edges)",
        graph.vertex_count(),
        graph.edge_count()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_graph::generators;

    #[test]
    fn edges_to_graph6_and_back() {
        let dir = std::env::temp_dir();
        let edges = dir.join("defender_convert_test.edges");
        let g6 = dir.join("defender_convert_test.g6");
        let original = generators::petersen();
        edgelist::write(&edges, &original).unwrap();

        let options = Options::parse(
            &[
                "--in",
                edges.to_str().unwrap(),
                "--out",
                g6.to_str().unwrap(),
                "--to",
                "graph6",
            ]
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>(),
        )
        .unwrap();
        run(&options).unwrap();

        let back = edgelist::read_format(&g6, Some("graph6")).unwrap();
        assert_eq!(back, original);
        let _ = std::fs::remove_file(edges);
        let _ = std::fs::remove_file(g6);
    }

    #[test]
    fn unknown_format_rejected() {
        let dir = std::env::temp_dir();
        let edges = dir.join("defender_convert_bad.edges");
        edgelist::write(&edges, &generators::path(2)).unwrap();
        let options = Options::parse(
            &[
                "--in",
                edges.to_str().unwrap(),
                "--out",
                "/dev/null",
                "--to",
                "gml",
            ]
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(run(&options).is_err());
        let _ = std::fs::remove_file(edges);
    }
}
