//! `defender bench` — performance-gate utilities over `BENCH_*.json`
//! sidecars and Chrome trace exports.
//!
//! ```text
//! defender bench diff <baseline.json> <current.json> [--threshold 0.2] [--noise-floor 0.001] [--counters-only]
//! defender bench validate-trace <trace.json> [--min-threads 1] [--strict-drops]
//! ```
//!
//! `diff` exits with code 2 when any phase or counter regresses beyond the
//! threshold, so CI can gate on it directly; `--counters-only` skips the
//! machine-sensitive wall-clock phases and judges only the deterministic
//! counters (the mode CI uses, since a slower runner must not fail the
//! gate). `validate-trace` checks that a `--trace` export is well-formed
//! Chrome trace-event JSON with balanced begin/end pairs; `--min-threads`
//! additionally requires the timeline to span at least that many threads
//! (asserting a `--jobs N` run really fanned out). A trace that dropped
//! events (ring overflow) gets a warning — and exit code 2 under
//! `--strict-drops`, for runs whose analysis must see the full timeline.

use std::path::Path;
use std::process::ExitCode;

use defender_bench::diff::{self, DiffConfig, Sidecar};

use crate::args::Options;

const USAGE: &str = "usage:\n  \
    defender bench diff <baseline.json> <current.json> [--threshold 0.2] [--noise-floor 0.001] [--counters-only] [--format table|json]\n  \
    defender bench validate-trace <trace.json> [--min-threads 1] [--strict-drops]";

/// Dispatches the `bench` subcommands.
///
/// # Errors
///
/// Returns a usage error for unknown subcommands or malformed arguments,
/// and an I/O/parse error when an input file cannot be read.
pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let Some((sub, rest)) = argv.split_first() else {
        return Err(format!("`bench` needs a subcommand\n{USAGE}"));
    };
    match sub.as_str() {
        "diff" => run_diff(rest),
        "validate-trace" => run_validate_trace(rest),
        other => Err(format!("unknown bench subcommand `{other}`\n{USAGE}")),
    }
}

/// Splits leading positional arguments from trailing `--key value` options.
fn split_positionals(argv: &[String]) -> (Vec<&str>, &[String]) {
    let cut = argv
        .iter()
        .position(|token| token.starts_with("--"))
        .unwrap_or(argv.len());
    (
        argv[..cut].iter().map(String::as_str).collect(),
        &argv[cut..],
    )
}

fn run_diff(argv: &[String]) -> Result<ExitCode, String> {
    let (positionals, option_tokens) = split_positionals(argv);
    let [baseline_path, current_path] = positionals[..] else {
        return Err(format!(
            "`bench diff` needs exactly two sidecar files\n{USAGE}"
        ));
    };
    // `--counters-only` is a bare flag; strip it before the `--key value`
    // option parser sees the token stream.
    let mut counters_only = false;
    let option_tokens: Vec<String> = option_tokens
        .iter()
        .filter(|token| {
            if token.as_str() == "--counters-only" {
                counters_only = true;
                false
            } else {
                true
            }
        })
        .cloned()
        .collect();
    let options = Options::parse(&option_tokens)?;
    let config = DiffConfig {
        threshold: options.parse_or("threshold", diff::DEFAULT_THRESHOLD)?,
        noise_floor_seconds: options.parse_or("noise-floor", diff::DEFAULT_NOISE_FLOOR_SECONDS)?,
        counters_only,
    };
    if config.threshold < 0.0 {
        return Err("option `--threshold` must be non-negative".to_string());
    }
    let baseline = Sidecar::load(Path::new(baseline_path))?;
    let current = Sidecar::load(Path::new(current_path))?;
    if baseline.experiment != current.experiment {
        eprintln!(
            "warning: comparing different experiments (`{}` vs `{}`)",
            baseline.experiment, current.experiment
        );
    }
    let report = diff::diff(&baseline, &current, config);
    // `--format json` emits the machine-readable report (one line, field
    // order documented on `DiffReport::to_json`) so the sweep monitor and
    // CI consume verdicts without grepping the table. Exit semantics are
    // identical in both formats.
    match options.get("format") {
        None | Some("table") => print!("{}", report.render()),
        Some("json") => println!("{}", report.to_json()),
        Some(other) => {
            return Err(format!(
                "option `--format` must be `table` or `json`, got `{other}`"
            ))
        }
    }
    if report.passed() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(2))
    }
}

fn run_validate_trace(argv: &[String]) -> Result<ExitCode, String> {
    let (positionals, option_tokens) = split_positionals(argv);
    let [trace_path] = positionals[..] else {
        return Err(format!(
            "`bench validate-trace` needs one trace file\n{USAGE}"
        ));
    };
    // `--strict-drops` is a bare flag; strip it before the `--key value`
    // option parser sees the token stream.
    let mut strict_drops = false;
    let option_tokens: Vec<String> = option_tokens
        .iter()
        .filter(|token| {
            if token.as_str() == "--strict-drops" {
                strict_drops = true;
                false
            } else {
                true
            }
        })
        .cloned()
        .collect();
    let options = Options::parse(&option_tokens)?;
    let min_threads: usize = options.parse_or("min-threads", 1)?;
    let text = std::fs::read_to_string(trace_path)
        .map_err(|e| format!("cannot read {trace_path}: {e}"))?;
    let check = defender_obs::trace::validate_chrome_trace(&text)
        .map_err(|e| format!("{trace_path}: invalid trace: {e}"))?;
    if check.threads < min_threads {
        return Err(format!(
            "{trace_path}: trace spans {} thread(s), expected at least {min_threads}",
            check.threads
        ));
    }
    println!(
        "{trace_path}: valid Chrome trace ({} events, {} threads, max depth {}, {} dropped)",
        check.events, check.threads, check.max_depth, check.dropped
    );
    if check.dropped > 0 {
        eprintln!(
            "warning: {trace_path}: {} event(s) were dropped (ring overflow) — the timeline \
             is truncated; raise the ring capacity or shorten the run",
            check.dropped
        );
        if strict_drops {
            return Ok(ExitCode::from(2));
        }
    }
    Ok(ExitCode::SUCCESS)
}
