//! `defender` — command-line front end for the Tuple model.
//!
//! ```text
//! defender generate --family cycle --n 12 --out ring.edges
//! defender analyze  --graph ring.edges --k 2 --nu 6
//! defender simulate --graph ring.edges --k 2 --nu 6 --rounds 100000
//! defender help
//! ```
//!
//! Graph files are plain edge lists: one `u v` pair per line, `#` comments
//! allowed, vertex count inferred from the largest index.

use std::process::ExitCode;

mod args;
mod commands;
mod edgelist;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `defender help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some((command, rest)) = argv.split_first() else {
        commands::help::print();
        return Ok(());
    };
    let options = args::Options::parse(rest)?;
    let metrics = metrics_format(&options)?;
    if metrics.is_some() {
        defender_obs::enable();
    }
    let result = match command.as_str() {
        "generate" => commands::generate::run(&options),
        "analyze" => commands::analyze::run(&options),
        "simulate" => commands::simulate::run(&options),
        "value" => commands::value::run(&options),
        "convert" => commands::convert::run(&options),
        "help" | "--help" | "-h" => {
            commands::help::print();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    if result.is_ok() {
        if let Some(format) = metrics {
            dump_metrics(format);
        }
    }
    result
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetricsFormat {
    Json,
    Table,
}

/// Parses `--metrics json|table` (any command accepts it).
fn metrics_format(options: &args::Options) -> Result<Option<MetricsFormat>, String> {
    match options.get("metrics") {
        None => Ok(None),
        Some("json") => Ok(Some(MetricsFormat::Json)),
        Some("table") => Ok(Some(MetricsFormat::Table)),
        Some(other) => Err(format!(
            "option `--metrics` must be `json` or `table`, got `{other}`"
        )),
    }
}

fn dump_metrics(format: MetricsFormat) {
    let snapshot = defender_obs::snapshot();
    match format {
        MetricsFormat::Json => println!("{}", snapshot.to_json()),
        MetricsFormat::Table => {
            println!("-- metrics --");
            print!("{}", snapshot.to_table());
        }
    }
}
