//! `defender` — command-line front end for the Tuple model.
//!
//! ```text
//! defender generate --family cycle --n 12 --out ring.edges
//! defender analyze  --graph ring.edges --k 2 --nu 6
//! defender simulate --graph ring.edges --k 2 --nu 6 --rounds 100000
//! defender bench diff baselines/BENCH_e1.json BENCH_e1.json
//! defender help
//! ```
//!
//! Graph files are plain edge lists: one `u v` pair per line, `#` comments
//! allowed, vertex count inferred from the largest index.

use std::path::PathBuf;
use std::process::ExitCode;

mod args;
mod commands;
mod edgelist;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `defender help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<ExitCode, String> {
    let Some((command, rest)) = argv.split_first() else {
        commands::help::print();
        return Ok(ExitCode::SUCCESS);
    };
    // `bench`, `lint`, `profile` and `sweep` manage their own argument
    // grammars (positional files, value-less flags), which
    // `Options::parse` rejects by design; dispatch them before the
    // uniform option pass. `serve` blocks until shut down over HTTP, so
    // it skips the post-run metrics/trace export below. `help` takes an
    // optional positional topic.
    if command == "bench" {
        return commands::bench::run(rest);
    }
    if command == "lint" {
        return commands::lint::run(rest);
    }
    if command == "profile" {
        return commands::profile::run(rest);
    }
    if command == "sweep" {
        return commands::sweep::run(rest);
    }
    if command == "serve" {
        return commands::serve::run(rest);
    }
    if command == "help" || command == "--help" || command == "-h" {
        commands::help::run(rest);
        return Ok(ExitCode::SUCCESS);
    }
    let options = args::Options::parse(rest)?;
    if options.get("jobs").is_some() {
        let n: usize = options.required_parse("jobs")?;
        if n == 0 {
            return Err("option `--jobs` must be at least 1".to_string());
        }
        defender_par::set_jobs(n);
    }
    let metrics = metrics_format(&options)?;
    let metrics_out = options.get("metrics-out").map(PathBuf::from);
    let trace_out = options.get("trace").map(PathBuf::from);
    if metrics.is_some() || metrics_out.is_some() {
        defender_obs::enable();
    }
    if trace_out.is_some() {
        defender_obs::trace::start();
    }
    let result = match command.as_str() {
        "generate" => commands::generate::run(&options),
        "analyze" => commands::analyze::run(&options),
        "simulate" => commands::simulate::run(&options),
        "value" => commands::value::run(&options),
        "convert" => commands::convert::run(&options),
        other => Err(format!("unknown command `{other}`")),
    };
    if result.is_ok() {
        if let Some(format) = metrics {
            dump_metrics(format);
        }
        if let Some(path) = metrics_out {
            let snapshot = defender_obs::snapshot();
            std::fs::write(&path, snapshot.to_json())
                .map_err(|e| format!("cannot write metrics to {}: {e}", path.display()))?;
            eprintln!("wrote metrics {}", path.display());
        }
        if let Some(path) = trace_out {
            defender_obs::trace::stop();
            defender_obs::trace::write_chrome_trace(&path)
                .map_err(|e| format!("cannot write trace to {}: {e}", path.display()))?;
            eprintln!("wrote trace {}", path.display());
        }
    }
    result.map(|()| ExitCode::SUCCESS)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetricsFormat {
    Json,
    Table,
}

/// Parses `--metrics json|table` (any command accepts it).
fn metrics_format(options: &args::Options) -> Result<Option<MetricsFormat>, String> {
    match options.get("metrics") {
        None => Ok(None),
        Some("json") => Ok(Some(MetricsFormat::Json)),
        Some("table") => Ok(Some(MetricsFormat::Table)),
        Some(other) => Err(format!(
            "option `--metrics` must be `json` or `table`, got `{other}`"
        )),
    }
}

fn dump_metrics(format: MetricsFormat) {
    let snapshot = defender_obs::snapshot();
    match format {
        MetricsFormat::Json => println!("{}", snapshot.to_json()),
        MetricsFormat::Table => {
            println!("-- metrics --");
            print!("{}", snapshot.to_table());
        }
    }
}
