//! Minimal `--key value` argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed `--key value` options.
#[derive(Clone, Debug, Default)]
pub struct Options {
    values: BTreeMap<String, String>,
}

impl Options {
    /// Parses a `--key value --key2 value2 …` list.
    ///
    /// # Errors
    ///
    /// Rejects positional arguments, repeated keys and dangling flags.
    pub fn parse(argv: &[String]) -> Result<Options, String> {
        let mut values = BTreeMap::new();
        let mut iter = argv.iter();
        while let Some(token) = iter.next() {
            let Some(key) = token.strip_prefix("--") else {
                return Err(format!("expected `--option`, found `{token}`"));
            };
            let Some(value) = iter.next() else {
                return Err(format!("option `--{key}` needs a value"));
            };
            if values.insert(key.to_string(), value.clone()).is_some() {
                return Err(format!("option `--{key}` given twice"));
            }
        }
        Ok(Options { values })
    }

    /// The raw value of `key`, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// Returns a usage error naming the missing option.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option `--{key}`"))
    }

    /// A required parsed option.
    ///
    /// # Errors
    ///
    /// Returns a usage error for missing or malformed values.
    pub fn required_parse<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.required(key)?
            .parse()
            .map_err(|_| format!("option `--{key}` has an invalid value"))
    }

    /// An optional parsed option with a default.
    ///
    /// # Errors
    ///
    /// Returns a usage error for malformed values.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("option `--{key}` has an invalid value")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_pairs() {
        let options = Options::parse(&argv(&["--n", "12", "--family", "cycle"])).unwrap();
        assert_eq!(options.get("n"), Some("12"));
        assert_eq!(options.required("family").unwrap(), "cycle");
        assert_eq!(options.required_parse::<usize>("n").unwrap(), 12);
        assert_eq!(options.parse_or("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn rejects_positional() {
        assert!(Options::parse(&argv(&["cycle"])).is_err());
    }

    #[test]
    fn rejects_dangling_flag() {
        assert!(Options::parse(&argv(&["--n"])).is_err());
    }

    #[test]
    fn rejects_duplicates() {
        assert!(Options::parse(&argv(&["--n", "1", "--n", "2"])).is_err());
    }

    #[test]
    fn reports_missing_and_malformed() {
        let options = Options::parse(&argv(&["--n", "twelve"])).unwrap();
        assert!(options.required("family").unwrap_err().contains("--family"));
        assert!(options
            .required_parse::<usize>("n")
            .unwrap_err()
            .contains("--n"));
        assert!(options.parse_or::<usize>("n", 1).is_err());
    }
}
