//! Quickstart: model a small network, ask every question the paper
//! answers, and print the results.
//!
//! Run with: `cargo run --example quickstart`

use power_of_the_defender::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-host ring network: hosts are vertices, links are edges.
    let network = generators::cycle(8);
    println!(
        "network: ring with {} hosts, {} links",
        network.vertex_count(),
        network.edge_count()
    );

    // Four viruses roam the network; the security software scans 2 links.
    let game = TupleGame::new(&network, 2, 4)?;

    // --- Theorem 3.1 / Corollaries 3.2-3.3: pure equilibria -------------
    match pure_ne_existence(&game) {
        PureNeOutcome::Exists { cover, .. } => {
            println!("pure NE exists with defender cover {cover:?}");
        }
        PureNeOutcome::None { min_cover_size } => {
            println!(
                "no pure NE: the smallest edge cover needs {min_cover_size} links, \
                 the defender only scans {}",
                game.k()
            );
        }
    }

    // --- Theorem 5.1: the ring is bipartite, so a k-matching NE exists --
    let ne = a_tuple_bipartite(&game)?;
    println!(
        "k-matching NE: attackers uniform on {} hosts, defender uniform on {} tuples",
        ne.supports().vp_support.len(),
        ne.tuple_count(),
    );

    // --- Theorem 3.4: verify it is really a Nash equilibrium ------------
    let report = verify_mixed_ne(&game, ne.config(), VerificationMode::Auto)?;
    assert!(report.is_equilibrium());
    println!("characterization verdict: equilibrium (all 7 conditions hold)");

    // --- the headline: the defender's power -----------------------------
    println!(
        "defender gain (expected arrests): {} = k·ν/|IS|; quality of protection: {}",
        ne.defender_gain(),
        quality_of_protection(&game, ne.config()),
    );

    // --- and what the attackers get --------------------------------------
    println!(
        "each virus escapes with probability {}",
        Ratio::ONE - ne.hit_probability()
    );
    Ok(())
}
