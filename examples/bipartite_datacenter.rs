//! Scenario: a leaf-spine datacenter fabric under attack.
//!
//! Spine switches and leaf switches form a bipartite network (cross-links
//! sampled randomly, every switch connected). A fleet of `ν` malware
//! instances each picks a switch to compromise; the intrusion-detection
//! system can deep-inspect `k` links at a time. The paper's Theorem 5.1
//! gives the optimal randomized inspection schedule in closed form — this
//! example computes it, verifies it, and shows how protection scales with
//! the inspection budget `k`.
//!
//! Run with: `cargo run --example bipartite_datacenter`

use defender_num::rng::StdRng;
use power_of_the_defender::prelude::*;

const SPINES: usize = 4;
const LEAVES: usize = 12;
const MALWARE: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2006);
    let fabric = generators::random_bipartite(SPINES, LEAVES, 0.6, &mut rng);
    println!(
        "fabric: {SPINES} spines + {LEAVES} leaves, {} links; {MALWARE} malware instances",
        fabric.edge_count()
    );

    // The minimum vertex cover tells us which tier the IDS should focus on.
    let koenig = defender_matching::koenig::koenig_auto(&fabric)?;
    println!(
        "minimum vertex cover has {} switches (maximum matching: {} links)",
        koenig.cover.len(),
        koenig.matching.len()
    );

    println!(
        "\n{:>3} | {:>12} | {:>12} | {:>10} | {:>7}",
        "k", "arrests", "protection", "escape pr.", "tuples"
    );
    println!("{}", "-".repeat(58));
    let is_size = fabric.vertex_count() - koenig.cover.len();
    for k in 1..=is_size {
        let game = TupleGame::new(&fabric, k, MALWARE)?;
        let ne = a_tuple_bipartite(&game)?;
        let report = verify_mixed_ne(&game, ne.config(), VerificationMode::Auto)?;
        assert!(report.is_equilibrium(), "k = {k}: {:?}", report.failures());
        println!(
            "{:>3} | {:>12} | {:>12} | {:>10} | {:>7}",
            k,
            ne.defender_gain().to_string(),
            quality_of_protection(&game, ne.config()).to_string(),
            (Ratio::ONE - ne.hit_probability()).to_string(),
            ne.tuple_count(),
        );
    }

    // Render the k = 2 equilibrium for the ops runbook.
    let game = TupleGame::new(&fabric, 2, MALWARE)?;
    let ne = a_tuple_bipartite(&game)?;
    let dot = defender_graph::dot::to_dot(
        &fabric,
        &defender_graph::dot::DotOptions {
            highlight_vertices: ne.supports().vp_support.clone(),
            highlight_edges: ne.supports().support_edges(),
            name: "inspection_schedule".into(),
        },
    );
    println!("\nGraphviz DOT of the k = 2 schedule (attacker support filled, scanned links bold):");
    println!("{dot}");
    Ok(())
}
