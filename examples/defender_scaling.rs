//! The headline result as a series: defender gain vs. scanning width `k`.
//!
//! For several graph families with known independent-set structure, sweep
//! `k` and print `IP_tp` at the k-matching equilibrium next to the paper's
//! closed form `k·ν/|IS|` (Corollaries 4.7/4.10) — they coincide exactly,
//! so the gain is a straight line in `k` with slope `ν/|IS|`.
//!
//! Run with: `cargo run --example defender_scaling`

use power_of_the_defender::prelude::*;

const ATTACKERS: usize = 12;

fn sweep(name: &str, graph: &Graph) -> Result<(), Box<dyn std::error::Error>> {
    let koenig = defender_matching::koenig::koenig_auto(graph)?;
    let is_size = graph.vertex_count() - koenig.cover.len();
    println!(
        "\n{name}: n = {}, m = {}, |IS| = {is_size}, ν = {ATTACKERS}",
        graph.vertex_count(),
        graph.edge_count()
    );
    println!(
        "{:>3} | {:>10} | {:>10} | {:>6}",
        "k", "measured", "k·ν/|IS|", "ratio"
    );
    println!("{}", "-".repeat(40));
    let edge_game = TupleGame::new(graph, 1, ATTACKERS)?;
    let base = a_tuple_bipartite(&edge_game)?;
    for k in 1..=is_size.min(graph.edge_count()) {
        let game = TupleGame::new(graph, k, ATTACKERS)?;
        let ne = a_tuple_bipartite(&game)?;
        let predicted = defender_core::gain::predicted_k_matching_gain(k, ATTACKERS, is_size);
        assert_eq!(ne.defender_gain(), predicted);
        println!(
            "{:>3} | {:>10} | {:>10} | {:>6}",
            k,
            ne.defender_gain().to_string(),
            predicted.to_string(),
            (ne.defender_gain() / base.defender_gain()).to_string(),
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    sweep("ring C12", &generators::cycle(12))?;
    sweep("star K_{1,8}", &generators::star(8))?;
    sweep(
        "complete bipartite K_{3,6}",
        &generators::complete_bipartite(3, 6),
    )?;
    sweep("4x4 grid", &generators::grid(4, 4))?;
    sweep("hypercube Q3", &generators::hypercube(3))?;
    println!("\nEvery family shows ratio = k: the defender's power is linear in k.");
    Ok(())
}
