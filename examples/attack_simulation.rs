//! Monte-Carlo validation: play the equilibrium and watch the law of
//! large numbers converge to the paper's closed forms.
//!
//! Simulates the motivating scenario — viruses attack, the security
//! software scans — for increasing round counts, comparing the empirical
//! arrest rate with `IP_tp = k·ν/|IS|` (equation (2) / Corollary 4.10) and
//! the empirical escape frequency with `1 − k/|E(D(tp))|` (equation (1) /
//! Claim 4.3).
//!
//! Run with: `cargo run --example attack_simulation`

use power_of_the_defender::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = generators::grid(3, 4);
    let game = TupleGame::new(&network, 2, 6)?;
    let ne = a_tuple_bipartite(&game)?;

    let exact_gain = ne.defender_gain();
    let exact_escape = Ratio::ONE - ne.hit_probability();
    println!(
        "3×4 grid, k = 2, ν = 6: exact IP_tp = {exact_gain}, exact escape probability = {exact_escape}"
    );
    println!(
        "\n{:>9} | {:>12} | {:>10} | {:>14} | {:>10}",
        "rounds", "mean caught", "gain err", "mean escape", "escape err"
    );
    println!("{}", "-".repeat(68));

    for rounds in [100u64, 1_000, 10_000, 100_000] {
        let outcome = Simulator::new(&game, ne.config()).run(&SimulationConfig {
            rounds,
            seed: 0xDEF,
        });
        let mean_escape: f64 =
            outcome.escape_frequency.iter().sum::<f64>() / outcome.escape_frequency.len() as f64;
        println!(
            "{:>9} | {:>12.4} | {:>10.4} | {:>14.4} | {:>10.4}",
            rounds,
            outcome.mean_caught,
            outcome.gain_error(exact_gain),
            mean_escape,
            (mean_escape - exact_escape.to_f64()).abs(),
        );
    }

    println!("\nThe errors shrink like 1/√rounds: the simulator agrees with equations (1)-(2).");
    Ok(())
}
