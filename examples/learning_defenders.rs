//! Do myopic players *learn* the equilibrium? Fictitious play in action.
//!
//! Neither player is told the Nash equilibrium. Each round the attacker
//! targets the historically least-scanned host and the defender scans the
//! links that would have caught the most of the attacker's past positions
//! (the exact maximum-coverage oracle). Because the ν = 1 game is
//! constant-sum, Robinson's theorem promises the time-averaged catch rate
//! converges to the game's value — the same `k/|IS|` the paper's
//! k-matching equilibrium prescribes.
//!
//! Run with: `cargo run --release --example learning_defenders`

use power_of_the_defender::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A star: one gateway host (v0) linked to six workstations. The hub is
    // a death trap for the attacker — every scanned link covers it.
    let network = generators::star(6);
    let game = TupleGame::new(&network, 2, 1)?;

    // What the theory says the defender is worth.
    let ne = a_tuple_bipartite(&game)?;
    let value = ne.defender_gain().to_f64();
    println!(
        "star K_{{1,6}}, k = 2, one attacker: equilibrium value = {} = {:.4}",
        ne.defender_gain(),
        value
    );

    // What two myopic learners discover on their own.
    let trace = fictitious_play(&game, 8_000, OracleMode::Exact { limit: 200_000 })?;
    println!("\n{:>7} | {:>12} | {:>9}", "round", "avg caught", "gap");
    println!("{}", "-".repeat(35));
    for (round, avg) in &trace.checkpoints {
        println!(
            "{:>7} | {:>12.4} | {:>9.4}",
            round,
            avg,
            (avg - value).abs()
        );
    }

    println!("\nwhere the attacker learned to hide (visit frequency):");
    let total: usize = trace.attacker_frequency.iter().sum();
    for v in network.vertices() {
        let freq = trace.attacker_frequency[v.index()] as f64 / total as f64;
        let bar = "#".repeat((freq * 40.0).round() as usize);
        println!("  {v}: {freq:>6.3} {bar}");
    }
    println!(
        "\nThe attacker's empirical mixture concentrates on the leaves — the \
         independent set {:?} the paper derives analytically — and all but \
         abandons the gateway v0.",
        ne.supports().vp_support
    );
    Ok(())
}
