#!/usr/bin/env bash
# Local CI gate: run everything a reviewer would.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo test =="
cargo test --workspace -q

echo "== defender lint =="
# Workspace static analysis (exactness, determinism, panic-freedom,
# concurrency discipline, exact-path panic/cast gating, unsafe/dependency
# audits, suppression ageing, metric-registry audit — see DESIGN.md §12
# and §17). Hard gate: an unregistered counter, an un-annotated library
# unwrap, or a stale allow fails CI before the bench gates run. The
# --sidecar counters then diff against the committed baseline so even a
# silent change in what the linter *sees* (files scanned, finding mix)
# is a reviewed event.
LINT_DIR="$(mktemp -d)"
(cd "$LINT_DIR" && "$OLDPWD"/target/release/defender lint --root "$OLDPWD" --sidecar)
target/release/defender bench diff \
  baselines/BENCH_lint.json \
  "$LINT_DIR/BENCH_lint.json" \
  --counters-only
rm -rf "$LINT_DIR"

if [[ "${CI_MIRI:-0}" == "1" ]]; then
  echo "== miri (CI_MIRI=1) =="
  # Optional UB sweep over the unsafe-adjacent crates (the worker pool and
  # the rational kernel). Miri needs a nightly component that offline
  # containers usually lack, so skip gracefully when it is not installed.
  if cargo miri --version > /dev/null 2>&1; then
    cargo miri test -p defender-par -p defender-num
  else
    echo "miri not installed; skipping (install with: rustup component add miri)"
  fi
fi

echo "== trace smoke test =="
# Run one experiment with event tracing and in-process profiling on and
# make sure the exported Chrome trace parses, has balanced begin/end
# pairs, and dropped nothing (--strict-drops: a truncated timeline would
# silently skew every profile number downstream).
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
(cd "$SMOKE_DIR" && "$OLDPWD"/target/release/exp_e1_pure_frontier --profile --trace e1.json > /dev/null 2> /dev/null)
target/release/defender bench validate-trace "$SMOKE_DIR/e1.json" --strict-drops

echo "== profile analytics gate =="
# Replay the fresh trace through defender-profile. `defender profile`
# exits 2 if the wall-clock accounting invariant fails (some lane's root
# spans sum past the trace duration — a broken clock or replay), so this
# is an end-to-end sanity gate on the obs -> trace -> profile pipeline.
target/release/defender profile "$SMOKE_DIR/e1.json" > /dev/null
# Span-level regression gate: the --sidecar profile (BENCH_profile_e1.json)
# diffs against the committed baseline, counters only. The baseline is
# pruned to the jobs-invariant `prof.calls.*` rows — self-times are
# machine-sensitive and show up as informational NEW rows.
(cd "$SMOKE_DIR" && "$OLDPWD"/target/release/defender profile e1.json --sidecar > /dev/null)
target/release/defender bench diff \
  baselines/BENCH_profile_e1.json \
  "$SMOKE_DIR/BENCH_profile_e1.json" \
  --counters-only

echo "== profile jobs-invariance check =="
# The profile of a run must be independent of the pool width for every
# jobs-invariant field: `par.worker` frames are elided, so a --jobs 1
# and a --jobs 4 trace of the same experiment must agree on the span
# set, call counts, and flamegraph shape (worker utilization is allowed
# to differ and lives in the parallelism sidecar section instead).
JOBS_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$JOBS_DIR"' EXIT
(cd "$JOBS_DIR" && "$OLDPWD"/target/release/exp_e1_pure_frontier --jobs 1 --trace j1.json > /dev/null)
(cd "$JOBS_DIR" && "$OLDPWD"/target/release/exp_e1_pure_frontier --jobs 4 --trace j4.json > /dev/null)
target/release/defender profile "$JOBS_DIR/j1.json" --format json > "$JOBS_DIR/p1.json"
target/release/defender profile "$JOBS_DIR/j4.json" --format json > "$JOBS_DIR/p4.json"
for p in p1 p4; do
  grep -o '"name": "[^"]*", "calls": [0-9]*' "$JOBS_DIR/$p.json" > "$JOBS_DIR/$p.spans"
  grep -o '"path": "[^"]*", "calls": [0-9]*' "$JOBS_DIR/$p.json" > "$JOBS_DIR/$p.flame"
done
diff "$JOBS_DIR/p1.spans" "$JOBS_DIR/p4.spans"
diff "$JOBS_DIR/p1.flame" "$JOBS_DIR/p4.flame"

echo "== parallel suite smoke test =="
# Run the whole suite on a two-worker pool with tracing on: the exported
# timeline must keep per-thread stack discipline and really span the
# worker lanes (main thread + at least one worker).
SUITE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$JOBS_DIR" "$SUITE_DIR"' EXIT
(cd "$SUITE_DIR" && "$OLDPWD"/target/release/run_all_experiments --jobs 2 --trace trace.json > /dev/null)
target/release/defender bench validate-trace "$SUITE_DIR/trace.json" --min-threads 2

echo "== bench regression gate =="
# Compare the sidecar the smoke run just wrote against the committed
# baseline, judging only the deterministic counters: wall times are
# machine-sensitive (a slower CI runner is not a regression), while
# counters are exact algorithm work. Same-machine comparisons can rerun
# this without --counters-only for the time-aware gate.
target/release/defender bench diff \
  baselines/BENCH_e1_pure_frontier.json \
  "$SMOKE_DIR/BENCH_e1_pure_frontier.json" \
  --counters-only

# Second baseline: the value atlas drives the support-enumeration and
# deferred-reduction kernels, so its sidecar pins `se.pairs_tested` /
# `num.*` — any counter growing past the threshold (a pruning or fast-path
# regression) fails the gate. The suite smoke run above already wrote the
# fresh sidecar.
target/release/defender bench diff \
  baselines/BENCH_e15_value_atlas.json \
  "$SUITE_DIR/BENCH_e15_value_atlas.json" \
  --counters-only

echo "== sweep shard-width identity gate =="
# Run E1 as a sharded sweep at widths 1 and 3: the merged sidecars'
# `counters` objects must be byte-identical (every counter increment is
# attributable to exactly one corpus instance, so per-shard counters sum
# exactly — DESIGN.md §14). This is the cross-process analogue of the
# jobs-invariance check above.
SWEEP_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$JOBS_DIR" "$SUITE_DIR" "$SWEEP_DIR"' EXIT
target/release/defender sweep e1 --shards 1 --out "$SWEEP_DIR/w1" --quiet \
  --bin-dir target/release
target/release/defender sweep e1 --shards 3 --out "$SWEEP_DIR/w3" --quiet \
  --bin-dir target/release
for w in w1 w3; do
  grep -o '"counters": {[^}]*}' "$SWEEP_DIR/$w/BENCH_e1_pure_frontier.json" \
    > "$SWEEP_DIR/$w.counters"
done
diff "$SWEEP_DIR/w1.counters" "$SWEEP_DIR/w3.counters"
# The sharded counters must also match the unsharded smoke run's sidecar
# exactly — sharding may not change what is measured.
grep -o '"counters": {[^}]*}' "$SMOKE_DIR/BENCH_e1_pure_frontier.json" \
  > "$SWEEP_DIR/plain.counters"
diff "$SWEEP_DIR/plain.counters" "$SWEEP_DIR/w3.counters"

echo "== sweep kill-and-resume smoke =="
# Interrupt a 3-shard sweep with a real SIGKILL mid-run (workers
# serialized with --parallel 1 so at least one shard seals a checkpoint
# first), then resume it: the resumed merge must be byte-identical to the
# uninterrupted width-3 merge above. The shard PID files and DONE markers
# exist for exactly this kind of smoke test.
target/release/defender sweep e1 --shards 3 --out "$SWEEP_DIR/kr" --quiet \
  --parallel 1 --bin-dir target/release &
SWEEP_PID=$!
for _ in $(seq 1 200); do
  [[ -f "$SWEEP_DIR/kr/shard_0/DONE" ]] && break
  sleep 0.05
done
[[ -f "$SWEEP_DIR/kr/shard_0/DONE" ]] || { echo "shard 0 never checkpointed"; exit 1; }
kill -KILL "$SWEEP_PID" 2> /dev/null || true
wait "$SWEEP_PID" 2> /dev/null || true
# Reap any orphaned worker the kill left behind before resuming.
if [[ -f "$SWEEP_DIR/kr/shard_1/PID" ]]; then
  kill -KILL "$(cat "$SWEEP_DIR/kr/shard_1/PID")" 2> /dev/null || true
fi
# On a fast machine the sweep can finish before the kill lands; the
# resume below then exercises the all-checkpoints path instead (still a
# valid byte-identity check), so note it rather than fail.
if [[ -f "$SWEEP_DIR/kr/BENCH_e1_pure_frontier.json" ]]; then
  echo "note: sweep finished before the kill; resuming a complete sweep"
fi
target/release/defender sweep e1 --shards 3 --resume "$SWEEP_DIR/kr" --quiet \
  --bin-dir target/release
grep -o '"counters": {[^}]*}' "$SWEEP_DIR/kr/BENCH_e1_pure_frontier.json" \
  > "$SWEEP_DIR/kr.counters"
diff "$SWEEP_DIR/w3.counters" "$SWEEP_DIR/kr.counters"

echo "== equilibrium cache gate =="
# Run E15 twice against the same --cache directory. The first run fills
# the memo (one entry per isomorphism class); the second must be served
# entirely from it: `cache.misses` never ticks and `cache.hits` covers
# the whole atlas. Delta replay keeps the judged `counters` object
# byte-identical between the two runs — cache warmth must be invisible
# to the regression gate (DESIGN.md §15).
CACHE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$JOBS_DIR" "$SUITE_DIR" "$SWEEP_DIR" "$CACHE_DIR"' EXIT
mkdir "$CACHE_DIR/cold" "$CACHE_DIR/warm"
(cd "$CACHE_DIR/cold" && "$OLDPWD"/target/release/exp_e15_value_atlas --cache "$CACHE_DIR/memo" > /dev/null)
(cd "$CACHE_DIR/warm" && "$OLDPWD"/target/release/exp_e15_value_atlas --cache "$CACHE_DIR/memo" > /dev/null)
for r in cold warm; do
  grep -o '"counters": {[^}]*}' "$CACHE_DIR/$r/BENCH_e15_value_atlas.json" \
    > "$CACHE_DIR/$r.counters"
done
diff "$CACHE_DIR/cold.counters" "$CACHE_DIR/warm.counters"
grep -q '"cache.misses": [1-9]' "$CACHE_DIR/cold/BENCH_e15_value_atlas.json" \
  || { echo "cold run never missed the cache — the gate is not exercising it"; exit 1; }
if grep -q '"cache.misses": [1-9]' "$CACHE_DIR/warm/BENCH_e15_value_atlas.json"; then
  echo "warm run still missed the cache"; exit 1
fi
WARM_HITS="$(grep -o '"cache.hits": [0-9]*' "$CACHE_DIR/warm/BENCH_e15_value_atlas.json" | grep -o '[0-9]*$')"
[[ "${WARM_HITS:-0}" -gt 0 ]] || { echo "warm run reported no cache hits"; exit 1; }

echo "== serve gate =="
# Cold-then-warm load against one server cache directory (DESIGN.md §16).
# The loadgen asserts the warmth contract itself (--expect cold: one
# cache miss per distinct class; --expect warm: every response a hit,
# zero cache.misses delta, zero lp.simplex.pivots delta — a warm server
# does no solver work), and the two sidecars' judged `counters` objects
# must be byte-identical: the judged view is a pure function of the
# served class set, never of warmth, --jobs, or arrival order. The warm
# server runs at a different --jobs width to pin the jobs-invariance
# half of that claim in the same diff.
SERVE_DIR="$(mktemp -d)"
SERVE_PID=""
trap 'kill "$SERVE_PID" 2> /dev/null || true; rm -rf "$SMOKE_DIR" "$JOBS_DIR" "$SUITE_DIR" "$SWEEP_DIR" "$CACHE_DIR" "$SERVE_DIR"' EXIT
mkdir "$SERVE_DIR/cold" "$SERVE_DIR/warm"

serve_start() { # serve_start <logfile> <extra flags...>
  local log="$1"; shift
  target/release/defender serve --addr 127.0.0.1:0 "$@" > "$log" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 1 200); do
    grep -q '^listening ' "$log" && break
    sleep 0.05
  done
  SERVE_ADDR="$(grep -m1 '^listening ' "$log" | awk '{print $2}')"
  [[ -n "$SERVE_ADDR" ]] || { echo "server never printed its address"; cat "$log"; exit 1; }
}

serve_start "$SERVE_DIR/cold.log" --cache "$SERVE_DIR/memo"
(cd "$SERVE_DIR/cold" && "$OLDPWD"/target/release/exp_serve_load \
  --addr "$SERVE_ADDR" --expect cold --shutdown > /dev/null)
wait "$SERVE_PID"

serve_start "$SERVE_DIR/warm.log" --cache "$SERVE_DIR/memo" --jobs 3
(cd "$SERVE_DIR/warm" && "$OLDPWD"/target/release/exp_serve_load \
  --addr "$SERVE_ADDR" --expect warm --shutdown > /dev/null)
wait "$SERVE_PID"

for r in cold warm; do
  grep -o '"counters": {[^}]*}' "$SERVE_DIR/$r/BENCH_serve.json" > "$SERVE_DIR/$r.counters"
done
diff "$SERVE_DIR/cold.counters" "$SERVE_DIR/warm.counters"
# Gate the judged counters against the committed baseline: a drift in the
# per-class solve work (pivots, enumerations, kernel fast paths) for the
# fixed seeded load mix is an algorithmic regression.
target/release/defender bench diff \
  baselines/BENCH_serve.json \
  "$SERVE_DIR/cold/BENCH_serve.json" \
  --counters-only

echo "== serve overload gate =="
# A tiny queue and a long batch window force the load governor's hand:
# the flood of distinct fresh classes must shed with 429 + Retry-After
# past the watermark while an already-warm class keeps answering 200
# hits (the loadgen asserts all three, and shuts the server down even on
# its failure path).
serve_start "$SERVE_DIR/overload.log" --max-queue 4 --batch-window-ms 400
target/release/exp_serve_load --addr "$SERVE_ADDR" \
  --overload --clients 8 --requests 32 --shutdown > /dev/null
wait "$SERVE_PID"
SERVE_PID=""

echo "CI OK"
