#!/usr/bin/env bash
# Local CI gate: run everything a reviewer would.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "CI OK"
