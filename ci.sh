#!/usr/bin/env bash
# Local CI gate: run everything a reviewer would.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo test =="
cargo test --workspace -q

echo "== defender lint =="
# Workspace static analysis (exactness, determinism, panic-freedom,
# metric-registry audit — see DESIGN.md §12). Hard gate: an unregistered
# counter or an un-annotated library unwrap fails CI before the bench
# gates run.
target/release/defender lint

if [[ "${CI_MIRI:-0}" == "1" ]]; then
  echo "== miri (CI_MIRI=1) =="
  # Optional UB sweep over the unsafe-adjacent crates (the worker pool and
  # the rational kernel). Miri needs a nightly component that offline
  # containers usually lack, so skip gracefully when it is not installed.
  if cargo miri --version > /dev/null 2>&1; then
    cargo miri test -p defender-par -p defender-num
  else
    echo "miri not installed; skipping (install with: rustup component add miri)"
  fi
fi

echo "== trace smoke test =="
# Run one experiment with event tracing on and make sure the exported
# Chrome trace parses and has balanced begin/end pairs.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
(cd "$SMOKE_DIR" && "$OLDPWD"/target/release/exp_e1_pure_frontier --trace trace.json > /dev/null)
target/release/defender bench validate-trace "$SMOKE_DIR/trace.json"

echo "== parallel suite smoke test =="
# Run the whole suite on a two-worker pool with tracing on: the exported
# timeline must keep per-thread stack discipline and really span the
# worker lanes (main thread + at least one worker).
SUITE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$SUITE_DIR"' EXIT
(cd "$SUITE_DIR" && "$OLDPWD"/target/release/run_all_experiments --jobs 2 --trace trace.json > /dev/null)
target/release/defender bench validate-trace "$SUITE_DIR/trace.json" --min-threads 2

echo "== bench regression gate =="
# Compare the sidecar the smoke run just wrote against the committed
# baseline, judging only the deterministic counters: wall times are
# machine-sensitive (a slower CI runner is not a regression), while
# counters are exact algorithm work. Same-machine comparisons can rerun
# this without --counters-only for the time-aware gate.
target/release/defender bench diff \
  baselines/BENCH_e1_pure_frontier.json \
  "$SMOKE_DIR/BENCH_e1_pure_frontier.json" \
  --counters-only

# Second baseline: the value atlas drives the support-enumeration and
# deferred-reduction kernels, so its sidecar pins `se.pairs_tested` /
# `num.*` — any counter growing past the threshold (a pruning or fast-path
# regression) fails the gate. The suite smoke run above already wrote the
# fresh sidecar.
target/release/defender bench diff \
  baselines/BENCH_e15_value_atlas.json \
  "$SUITE_DIR/BENCH_e15_value_atlas.json" \
  --counters-only

echo "CI OK"
