#!/usr/bin/env bash
# Local CI gate: run everything a reviewer would.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo test =="
cargo test --workspace -q

echo "== trace smoke test =="
# Run one experiment with event tracing on and make sure the exported
# Chrome trace parses and has balanced begin/end pairs.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
(cd "$SMOKE_DIR" && "$OLDPWD"/target/release/exp_e1_pure_frontier --trace trace.json > /dev/null)
target/release/defender bench validate-trace "$SMOKE_DIR/trace.json"

echo "== bench regression gate =="
# Compare the sidecar the smoke run just wrote against the committed
# baseline. Counters are deterministic and gate tightly; wall times vary
# across machines, so the threshold is generous (5x) — this catches
# order-of-magnitude regressions, not noise.
target/release/defender bench diff \
  baselines/BENCH_e1_pure_frontier.json \
  "$SMOKE_DIR/BENCH_e1_pure_frontier.json" \
  --threshold 4.0

echo "CI OK"
