//! # The Power of the Defender — reproduction facade
//!
//! This crate re-exports the public API of the workspace that reproduces
//! *"The Power of the Defender"* (Gelastou, Mavronicolas, Papadopoulou,
//! Philippou, Spirakis — ICDCS 2006): a network-security game on a graph in
//! which `ν` attackers each pick a vertex and a single defender picks a
//! tuple of `k` edges, catching every attacker sitting on an endpoint.
//!
//! The heavy lifting lives in the member crates:
//!
//! - [`num`] — exact rational arithmetic ([`defender_num`]),
//! - [`graph`] — the undirected-graph substrate ([`defender_graph`]),
//! - [`matching`] — matching algorithms ([`defender_matching`]),
//! - [`game`] — the generic strategic-game substrate ([`defender_game`]),
//! - [`core`] — the paper itself: the Tuple model and its equilibria
//!   ([`defender_core`]).
//!
//! # Quick start
//!
//! Compute the k-matching Nash equilibrium of the Tuple model on a complete
//! bipartite graph and read off the defender's expected gain:
//!
//! ```
//! use power_of_the_defender::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = generators::complete_bipartite(3, 4);
//! let game = TupleGame::new(&graph, /* defender width k = */ 2, /* attackers ν = */ 6)?;
//! let equilibrium = a_tuple_bipartite(&game)?;
//!
//! // Theorem 4.5 / Corollary 4.10: the defender's gain is k·ν/|IS|.
//! assert_eq!(equilibrium.defender_gain(), Ratio::new(2 * 6, 4));
//! # Ok(())
//! # }
//! ```

pub use defender_core as core;
pub use defender_game as game;
pub use defender_graph as graph;
pub use defender_lp as lp;
pub use defender_matching as matching;
pub use defender_num as num;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use defender_core::{
        a_tuple, a_tuple_bipartite,
        algorithm::ATupleReport,
        best_response::{attacker_best_response, defender_best_response_greedy},
        characterization::{verify_mixed_ne, MixedNeReport, VerificationMode},
        covering_ne::{covering_ne, CoveringNe},
        defense::{defense_ratio, defense_ratio_lower_bound, is_defense_optimal},
        dynamics::{fictitious_play, OracleMode, PlayTrace},
        gain::{defender_gain, quality_of_protection},
        k_matching::{KMatchingConfig, KMatchingNe},
        matching_ne::{algorithm_a, MatchingConfig, MatchingNe},
        model::{EdgeGame, MixedConfig, PureConfig, TupleGame},
        path_model::{cycle_path_ne, pure_ne_existence_path, PathModelNe, PathStrategy},
        pure::{pure_ne_existence, PureNeOutcome},
        reduction::{expand_to_k_matching, restrict_to_matching},
        simulate::{SimulationConfig, Simulator},
        solve::{solve_exact, ExactEquilibrium},
        tree::a_tuple_tree,
        tuple::Tuple,
        CoreError,
    };
    pub use defender_graph::{generators, EdgeId, Graph, GraphBuilder, VertexId};
    pub use defender_matching::{
        hopcroft_karp, koenig_vertex_cover, maximum_matching, minimum_edge_cover, Matching,
    };
    pub use defender_num::Ratio;
}
