//! Integration tests for the extension modules: covering equilibria,
//! tree specialization, best-response oracles, fictitious play, and the
//! Path model — exercised together across crates.

use defender_core::best_response::{
    attacker_best_response, defender_best_response_exact, defender_best_response_greedy,
};
use defender_core::covering_ne::covering_ne;
use defender_core::dynamics::{fictitious_play, known_value, OracleMode};
use defender_core::exhaustive::GameAdapter;
use defender_core::path_model::{all_paths, cycle_path_ne, pure_ne_existence_path, verify_path_ne};
use defender_core::payoff;
use defender_num::rng::StdRng;
use power_of_the_defender::prelude::*;

#[test]
fn covering_ne_passes_every_verifier_level() {
    // Characterization, exhaustive best-response, and simulation all agree.
    let graph = generators::cycle(6);
    let game = TupleGame::new(&graph, 2, 3).unwrap();
    let ne = covering_ne(&game).unwrap();

    let fast = verify_mixed_ne(&game, ne.config(), VerificationMode::Analytic).unwrap();
    assert!(fast.is_equilibrium(), "{:?}", fast.failures());

    let adapter = GameAdapter::new(&game, 50_000).unwrap();
    let truth = adapter.verify(ne.config());
    assert!(truth.is_equilibrium(), "deviations: {:?}", truth.deviations);

    let outcome = Simulator::new(&game, ne.config()).run(&SimulationConfig {
        rounds: 40_000,
        seed: 5,
    });
    assert!(outcome.gain_error(ne.defender_gain()) < 0.05);
}

#[test]
fn covering_and_matching_equilibria_coexist_with_equal_gain() {
    // Bipartite + perfect matching: two structurally different equilibria,
    // same defender payoff (as any two NE of a constant-sum game must for
    // ν = 1, and here for any ν by the closed forms).
    for graph in [
        generators::cycle(8),
        generators::grid(2, 4),
        generators::complete_bipartite(3, 3),
    ] {
        let game = TupleGame::new(&graph, 2, 5).unwrap();
        let cov = covering_ne(&game).unwrap();
        let mat = a_tuple_bipartite(&game).unwrap();
        assert_eq!(cov.defender_gain(), mat.defender_gain(), "{graph:?}");
        assert_ne!(
            cov.config().vp_support_union(),
            mat.config().vp_support_union(),
            "different supports, same value"
        );
    }
}

#[test]
fn tree_route_scales_and_verifies() {
    let mut rng = StdRng::seed_from_u64(12);
    let graph = generators::random_tree(400, &mut rng);
    let game = TupleGame::new(&graph, 3, 10).unwrap();
    match a_tuple_tree(&game) {
        Ok(ne) => {
            let report = verify_mixed_ne(&game, ne.config(), VerificationMode::Analytic).unwrap();
            assert!(report.is_equilibrium(), "{:?}", report.failures());
        }
        Err(CoreError::TupleWiderThanSupport { .. }) => unreachable!("|IS| ≥ 200 on a 400-tree"),
        Err(e) => panic!("{e}"),
    }
}

#[test]
fn best_response_oracles_certify_equilibria() {
    // At an equilibrium neither oracle finds a strictly improving move.
    let graph = generators::complete_bipartite(2, 4);
    let game = TupleGame::new(&graph, 2, 3).unwrap();
    let ne = a_tuple_bipartite(&game).unwrap();

    let (_, escape) = attacker_best_response(&game, ne.config());
    assert_eq!(escape, Ratio::ONE - ne.hit_probability());

    let mass = payoff::vertex_mass(&game, ne.config());
    let (_, exact) = defender_best_response_exact(&game, &mass, 100_000).unwrap();
    assert_eq!(exact, ne.defender_gain());
    let (_, greedy) = defender_best_response_greedy(&game, &mass);
    assert!(greedy <= exact);
}

#[test]
fn fictitious_play_matches_analytic_value_across_instances() {
    for (graph, k, is_size) in [
        (generators::path(6), 1usize, 3usize),
        (generators::cycle(8), 2, 4),
        (generators::star(5), 1, 5),
    ] {
        let game = TupleGame::new(&graph, k, 1).unwrap();
        let trace = fictitious_play(&game, 3_000, OracleMode::Exact { limit: 100_000 }).unwrap();
        let value = known_value(k, is_size);
        assert!(
            (trace.average_payoff - value).abs() < 0.05,
            "{graph:?}: {} vs {value}",
            trace.average_payoff
        );
    }
}

#[test]
fn path_model_pure_frontier_is_hamiltonicity() {
    // Tuple model: polynomial frontier at ρ(G). Path model: only k = n−1
    // on traceable graphs. The Petersen graph separates widths maximally:
    // tuple pure NE from k = 5, path pure NE only at k = 9.
    let graph = generators::petersen();
    for k in 1..=graph.edge_count() {
        let game = TupleGame::new(&graph, k, 2).unwrap();
        let tuple_exists = pure_ne_existence(&game).exists();
        assert_eq!(tuple_exists, k >= 5, "tuple frontier at ρ = 5");
        if k <= 9 {
            let path_exists = pure_ne_existence_path(&game).unwrap().exists();
            assert_eq!(path_exists, k == 9, "path frontier at n − 1 = 9");
        }
    }
}

#[test]
fn path_rotation_ne_verified_and_dominated() {
    let graph = generators::cycle(10);
    let game = TupleGame::new(&graph, 3, 5).unwrap();
    let path_ne = cycle_path_ne(&game).unwrap();
    assert!(verify_path_ne(&game, &path_ne, 100_000).unwrap());
    let tuple_ne = covering_ne(&game).unwrap();
    // 2k/(k+1) = 6/4 advantage for the unconstrained defender.
    assert_eq!(
        tuple_ne.defender_gain() / path_ne.defender_gain,
        Ratio::new(6, 4)
    );
}

#[test]
fn path_enumeration_matches_structure() {
    // In C_n there are exactly n arcs of each feasible length.
    for n in [5usize, 6, 8] {
        let graph = generators::cycle(n);
        for k in 1..n {
            let paths = all_paths(&graph, k, 10_000).unwrap();
            assert_eq!(paths.len(), n, "C{n}, k = {k}");
        }
    }
}

#[test]
fn all_equilibria_of_tiny_instances_share_the_value() {
    // Support enumeration lists *every* (equal-support) equilibrium of the
    // bimatrix view; the game being constant-sum for ν = 1, all of them
    // must carry the same defender payoff — the LP value — including the
    // paper's structural equilibrium.
    use defender_game::enumerate_equilibria;
    for (graph, k) in [
        (generators::path(3), 1usize),
        (generators::path(4), 1),
        (generators::cycle(4), 1),
        (generators::star(3), 1),
        (generators::cycle(5), 1),
    ] {
        let game = TupleGame::new(&graph, k, 1).unwrap();
        let value = defender_core::solve::solve_exact(&game, 50_000)
            .unwrap()
            .value;
        let adapter = GameAdapter::new(&game, 50_000).unwrap();
        let (bimatrix, _tuples) = adapter.bimatrix().unwrap();
        let equilibria = enumerate_equilibria(&bimatrix);
        assert!(
            !equilibria.is_empty(),
            "{graph:?}: Nash guarantees existence"
        );
        for eq in &equilibria {
            assert_eq!(eq.row_payoff, value, "{graph:?}: constant-sum uniqueness");
            assert_eq!(
                eq.row_payoff + eq.col_payoff,
                Ratio::ONE,
                "catch + escape = 1"
            );
        }
    }
}

#[test]
fn cli_level_pipeline_via_public_api() {
    // Mirrors `defender analyze` on a generated instance end-to-end.
    let mut rng = StdRng::seed_from_u64(77);
    let graph = generators::random_bipartite(5, 9, 0.3, &mut rng);
    let game = TupleGame::new(&graph, 2, 6).unwrap();
    let ne = a_tuple_bipartite(&game).unwrap();
    let report = verify_mixed_ne(&game, ne.config(), VerificationMode::Auto).unwrap();
    assert!(report.is_equilibrium());
    assert_eq!(
        quality_of_protection(&game, ne.config()),
        ne.defender_gain() / Ratio::from(6)
    );
}
