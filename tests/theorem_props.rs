//! Property-based tests of the paper's theorems on randomized instances.

use defender_core::exhaustive::GameAdapter;
use defender_core::reduction::{
    cyclic_tuples, per_edge_multiplicity, support_tuple_count,
};
use power_of_the_defender::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random game-ready bipartite graph plus width/attacker parameters.
fn bipartite_instance() -> impl Strategy<Value = (Graph, usize, usize)> {
    (2usize..=5, 3usize..=7, 0u64..500, 1usize..=3, 1usize..=6).prop_map(
        |(a, b, seed, k, nu)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::random_bipartite(a, b, 0.4, &mut rng);
            (g, k, nu)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 4.12: every successful `A_tuple` output passes the exact
    /// Theorem 3.4 verifier.
    #[test]
    fn a_tuple_outputs_verify((g, k, nu) in bipartite_instance()) {
        if k > g.edge_count() {
            return Ok(());
        }
        let game = TupleGame::new(&g, k, nu).unwrap();
        match a_tuple_bipartite(&game) {
            Ok(ne) => {
                let report = verify_mixed_ne(&game, ne.config(), VerificationMode::Auto).unwrap();
                prop_assert!(report.is_equilibrium(), "{:?}", report.failures());
                // Closed forms.
                let is_size = ne.supports().vp_support.len();
                prop_assert_eq!(
                    ne.defender_gain(),
                    defender_core::gain::predicted_k_matching_gain(k, nu, is_size)
                );
            }
            Err(CoreError::TupleWiderThanSupport { support_size, .. }) => {
                prop_assert!(k > support_size);
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// Theorem 3.1 existence matches Gallai's ρ(G) = n − μ(G) on arbitrary
    /// connected graphs (not just bipartite).
    #[test]
    fn pure_frontier_matches_gallai(n in 4usize..=12, seed in 0u64..500, pct in 10u32..=60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, f64::from(pct) / 100.0, &mut rng);
        let rho = minimum_edge_cover(&g).unwrap().len();
        for k in 1..=g.edge_count() {
            let game = TupleGame::new(&g, k, 1).unwrap();
            prop_assert_eq!(pure_ne_existence(&game).exists(), k >= rho);
        }
    }

    /// Corollary 3.3: n ≥ 2k + 1 always implies non-existence.
    #[test]
    fn corollary_3_3_sound(n in 4usize..=12, seed in 0u64..200, k in 1usize..=4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, 0.3, &mut rng);
        if k <= g.edge_count() && n > 2 * k {
            let game = TupleGame::new(&g, k, 1).unwrap();
            prop_assert!(!pure_ne_existence(&game).exists());
        }
    }

    /// Claim 4.9 for the cyclic construction at every feasible (E, k).
    #[test]
    fn cyclic_construction_invariants(e_num in 1usize..=24, k_raw in 1usize..=24) {
        let k = k_raw.min(e_num);
        let windows = cyclic_tuples(e_num, k);
        prop_assert_eq!(windows.len(), support_tuple_count(e_num, k));
        let mut counts = vec![0usize; e_num];
        for w in &windows {
            let mut distinct = w.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), k, "windows hold distinct edges");
            for &i in w {
                counts[i] += 1;
            }
        }
        let expected = per_edge_multiplicity(e_num, k);
        prop_assert!(counts.iter().all(|&c| c == expected));
        // δ·k = lcm(E, k) — the minimality statement of Lemma 4.8.
        prop_assert_eq!(
            (windows.len() * k) as u128,
            defender_num::lcm(e_num as u128, k as u128)
        );
    }

    /// Theorem 4.5: expanding a matching NE multiplies the gain by exactly
    /// k, and restriction inverts expansion.
    #[test]
    fn reduction_gain_and_inverse((g, k, nu) in bipartite_instance()) {
        let edge_game = TupleGame::edge_model(&g, nu).unwrap();
        let Ok(base) = a_tuple_bipartite(&edge_game) else {
            return Ok(()); // k = 1 > |IS| cannot happen, but stay safe
        };
        let base_m = restrict_to_matching(&edge_game, &base).unwrap();
        if k > g.edge_count() {
            return Ok(());
        }
        let game = TupleGame::new(&g, k, nu).unwrap();
        match expand_to_k_matching(&game, &base_m) {
            Ok(kne) => {
                prop_assert_eq!(
                    kne.defender_gain(),
                    base_m.defender_gain() * Ratio::from(k)
                );
                let back = restrict_to_matching(&edge_game, &kne).unwrap();
                prop_assert_eq!(back.supports(), base_m.supports());
            }
            Err(CoreError::TupleWiderThanSupport { support_size, .. }) => {
                prop_assert!(k > support_size);
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The LP solver's output is always a first-principles equilibrium and
    /// never beats the defense-ratio bound n/(2k) — on *arbitrary* random
    /// connected graphs, not just the constructive families.
    #[test]
    fn lp_equilibria_certified_and_bounded(
        n in 4usize..=8,
        seed in 0u64..300,
        k in 1usize..=2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, 0.3, &mut rng);
        if k > g.edge_count() || g.edge_count() > 16 {
            return Ok(());
        }
        let game = TupleGame::new(&g, k, 1).unwrap();
        let exact = defender_core::solve::solve_exact(&game, 100_000).unwrap();
        let adapter = GameAdapter::new(&game, 100_000).unwrap();
        let truth = adapter.verify(&exact.config);
        prop_assert!(truth.is_equilibrium(), "deviations: {:?}", truth.deviations);
        // Defense-ratio bound: value ≤ 2k/n.
        prop_assert!(
            exact.value <= Ratio::from(2 * k) / Ratio::from(n),
            "value {} beats the 2k/n bound",
            exact.value
        );
        prop_assert!(exact.value > Ratio::ZERO, "defender can always catch something");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ground truth: on tiny instances, the structural equilibrium passes
    /// exhaustive first-principles verification.
    #[test]
    fn exhaustive_cross_validation(
        a in 1usize..=2,
        b in 2usize..=3,
        k in 1usize..=2,
        nu in 1usize..=2,
    ) {
        let g = generators::complete_bipartite(a, b);
        if k > g.edge_count() {
            return Ok(());
        }
        let game = TupleGame::new(&g, k, nu).unwrap();
        match a_tuple_bipartite(&game) {
            Ok(ne) => {
                let adapter = GameAdapter::new(&game, 100_000).unwrap();
                let truth = adapter.verify(ne.config());
                prop_assert!(truth.is_equilibrium(), "deviations: {:?}", truth.deviations);
            }
            Err(CoreError::TupleWiderThanSupport { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }
}
