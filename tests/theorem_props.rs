//! Property-based tests of the paper's theorems on randomized instances,
//! driven by the vendored seeded PRNG (offline build: no external
//! property-testing framework).

use defender_core::exhaustive::GameAdapter;
use defender_core::reduction::{cyclic_tuples, per_edge_multiplicity, support_tuple_count};
use defender_num::rng::{Rng, StdRng};
use power_of_the_defender::prelude::*;

/// A random game-ready bipartite graph plus width/attacker parameters.
fn bipartite_instance<R: Rng + ?Sized>(rng: &mut R) -> (Graph, usize, usize) {
    let a = rng.gen_range(2..6);
    let b = rng.gen_range(3..8);
    let k = rng.gen_range(1..4);
    let nu = rng.gen_range(1..7);
    let g = generators::random_bipartite(a, b, 0.4, rng);
    (g, k, nu)
}

/// Theorem 4.12: every successful `A_tuple` output passes the exact
/// Theorem 3.4 verifier.
#[test]
fn a_tuple_outputs_verify() {
    let mut rng = StdRng::seed_from_u64(0xD1);
    for _ in 0..64 {
        let (g, k, nu) = bipartite_instance(&mut rng);
        if k > g.edge_count() {
            continue;
        }
        let game = TupleGame::new(&g, k, nu).unwrap();
        match a_tuple_bipartite(&game) {
            Ok(ne) => {
                let report = verify_mixed_ne(&game, ne.config(), VerificationMode::Auto).unwrap();
                assert!(report.is_equilibrium(), "{:?}", report.failures());
                // Closed forms.
                let is_size = ne.supports().vp_support.len();
                assert_eq!(
                    ne.defender_gain(),
                    defender_core::gain::predicted_k_matching_gain(k, nu, is_size)
                );
            }
            Err(CoreError::TupleWiderThanSupport { support_size, .. }) => {
                assert!(k > support_size);
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

/// Theorem 3.1 existence matches Gallai's ρ(G) = n − μ(G) on arbitrary
/// connected graphs (not just bipartite).
#[test]
fn pure_frontier_matches_gallai() {
    let mut rng = StdRng::seed_from_u64(0xD2);
    for _ in 0..40 {
        let n = rng.gen_range(4..13);
        let pct = rng.gen_range(10..61);
        let g = generators::gnp_connected(n, pct as f64 / 100.0, &mut rng);
        let rho = minimum_edge_cover(&g).unwrap().len();
        for k in 1..=g.edge_count() {
            let game = TupleGame::new(&g, k, 1).unwrap();
            assert_eq!(pure_ne_existence(&game).exists(), k >= rho);
        }
    }
}

/// Corollary 3.3: n ≥ 2k + 1 always implies non-existence.
#[test]
fn corollary_3_3_sound() {
    let mut rng = StdRng::seed_from_u64(0xD3);
    for _ in 0..64 {
        let n = rng.gen_range(4..13);
        let k = rng.gen_range(1..5);
        let g = generators::gnp_connected(n, 0.3, &mut rng);
        if k <= g.edge_count() && n > 2 * k {
            let game = TupleGame::new(&g, k, 1).unwrap();
            assert!(!pure_ne_existence(&game).exists());
        }
    }
}

/// Claim 4.9 for the cyclic construction at every feasible (E, k).
#[test]
fn cyclic_construction_invariants() {
    for e_num in 1usize..=24 {
        for k in 1usize..=e_num {
            let windows = cyclic_tuples(e_num, k);
            assert_eq!(windows.len(), support_tuple_count(e_num, k));
            let mut counts = vec![0usize; e_num];
            for w in &windows {
                let mut distinct = w.clone();
                distinct.sort_unstable();
                distinct.dedup();
                assert_eq!(distinct.len(), k, "windows hold distinct edges");
                for &i in w {
                    counts[i] += 1;
                }
            }
            let expected = per_edge_multiplicity(e_num, k);
            assert!(counts.iter().all(|&c| c == expected));
            // δ·k = lcm(E, k) — the minimality statement of Lemma 4.8.
            assert_eq!(
                (windows.len() * k) as u128,
                defender_num::lcm(e_num as u128, k as u128)
            );
        }
    }
}

/// Theorem 4.5: expanding a matching NE multiplies the gain by exactly
/// k, and restriction inverts expansion.
#[test]
fn reduction_gain_and_inverse() {
    let mut rng = StdRng::seed_from_u64(0xD4);
    for _ in 0..64 {
        let (g, k, nu) = bipartite_instance(&mut rng);
        let edge_game = TupleGame::edge_model(&g, nu).unwrap();
        let Ok(base) = a_tuple_bipartite(&edge_game) else {
            continue; // k = 1 > |IS| cannot happen, but stay safe
        };
        let base_m = restrict_to_matching(&edge_game, &base).unwrap();
        if k > g.edge_count() {
            continue;
        }
        let game = TupleGame::new(&g, k, nu).unwrap();
        match expand_to_k_matching(&game, &base_m) {
            Ok(kne) => {
                assert_eq!(kne.defender_gain(), base_m.defender_gain() * Ratio::from(k));
                let back = restrict_to_matching(&edge_game, &kne).unwrap();
                assert_eq!(back.supports(), base_m.supports());
            }
            Err(CoreError::TupleWiderThanSupport { support_size, .. }) => {
                assert!(k > support_size);
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

/// The LP solver's output is always a first-principles equilibrium and
/// never beats the defense-ratio bound n/(2k) — on *arbitrary* random
/// connected graphs, not just the constructive families.
#[test]
fn lp_equilibria_certified_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0xD5);
    let mut checked = 0;
    while checked < 16 {
        let n = rng.gen_range(4..9);
        let k = rng.gen_range(1..3);
        let g = generators::gnp_connected(n, 0.3, &mut rng);
        if k > g.edge_count() || g.edge_count() > 16 {
            continue;
        }
        checked += 1;
        let game = TupleGame::new(&g, k, 1).unwrap();
        let exact = defender_core::solve::solve_exact(&game, 100_000).unwrap();
        let adapter = GameAdapter::new(&game, 100_000).unwrap();
        let truth = adapter.verify(&exact.config);
        assert!(truth.is_equilibrium(), "deviations: {:?}", truth.deviations);
        // Defense-ratio bound: value ≤ 2k/n.
        assert!(
            exact.value <= Ratio::from(2 * k) / Ratio::from(n),
            "value {} beats the 2k/n bound",
            exact.value
        );
        assert!(
            exact.value > Ratio::ZERO,
            "defender can always catch something"
        );
    }
}

/// Ground truth: on tiny instances, the structural equilibrium passes
/// exhaustive first-principles verification.
#[test]
fn exhaustive_cross_validation() {
    for a in 1usize..=2 {
        for b in 2usize..=3 {
            for k in 1usize..=2 {
                for nu in 1usize..=2 {
                    let g = generators::complete_bipartite(a, b);
                    if k > g.edge_count() {
                        continue;
                    }
                    let game = TupleGame::new(&g, k, nu).unwrap();
                    match a_tuple_bipartite(&game) {
                        Ok(ne) => {
                            let adapter = GameAdapter::new(&game, 100_000).unwrap();
                            let truth = adapter.verify(ne.config());
                            assert!(
                                truth.is_equilibrium(),
                                "a={a} b={b} k={k} nu={nu}: {:?}",
                                truth.deviations
                            );
                        }
                        Err(CoreError::TupleWiderThanSupport { .. }) => {}
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
        }
    }
}
