//! Integration tests spanning every crate: generator → partition →
//! `A_tuple` → characterization verifier → exhaustive cross-check →
//! simulator.

use defender_core::exhaustive::GameAdapter;
use defender_core::gain::{predicted_k_matching_gain, quality_of_protection as qop};
use defender_core::reduction;
use defender_num::rng::StdRng;
use power_of_the_defender::prelude::*;

/// The full pipeline on one bipartite instance, all invariants checked.
fn pipeline(graph: &Graph, k: usize, attackers: usize) {
    let game = TupleGame::new(graph, k, attackers).unwrap();
    let ne = match a_tuple_bipartite(&game) {
        Ok(ne) => ne,
        Err(CoreError::TupleWiderThanSupport { .. }) => return, // legal regime
        Err(e) => panic!("unexpected error: {e}"),
    };

    // Theorem 3.4 verification (exact).
    let report = verify_mixed_ne(&game, ne.config(), VerificationMode::Auto).unwrap();
    assert!(report.is_equilibrium(), "k = {k}: {:?}", report.failures());

    // Closed forms (Claim 4.3, Corollary 4.10).
    let is_size = ne.supports().vp_support.len();
    assert_eq!(
        ne.defender_gain(),
        predicted_k_matching_gain(k, attackers, is_size)
    );
    assert_eq!(
        ne.hit_probability(),
        Ratio::from(k) / Ratio::from(ne.supports().support_edges().len())
    );
    assert_eq!(
        qop(&game, ne.config()),
        ne.defender_gain() / Ratio::from(attackers)
    );

    // Support structure: |E(D(tp))| = |D(VP)| (the bijection of
    // Corollary 4.11 / DESIGN.md §5.2).
    assert_eq!(ne.supports().support_edges().len(), is_size);
}

#[test]
fn pipeline_across_bipartite_families() {
    for graph in [
        generators::path(6),
        generators::path(9),
        generators::cycle(6),
        generators::cycle(10),
        generators::star(5),
        generators::complete_bipartite(2, 5),
        generators::complete_bipartite(4, 4),
        generators::grid(3, 3),
        generators::grid(2, 5),
        generators::hypercube(3),
        generators::ladder(4),
    ] {
        for k in 1..=3usize {
            if k <= graph.edge_count() {
                pipeline(&graph, k, 5);
            }
        }
    }
}

#[test]
fn pipeline_on_random_bipartite_and_trees() {
    let mut rng = StdRng::seed_from_u64(31_415);
    for trial in 0..20 {
        let graph = generators::random_bipartite(3 + trial % 4, 5 + trial % 5, 0.35, &mut rng);
        pipeline(&graph, 1 + trial % 3, 4);
        let tree = generators::random_tree(8 + trial % 6, &mut rng);
        pipeline(&tree, 1 + trial % 2, 3);
    }
}

#[test]
fn structural_equilibria_survive_first_principles() {
    // The polynomial construction agrees with exhaustive best-response
    // checks on instances small enough to enumerate.
    for (graph, k, nu) in [
        (generators::path(4), 1usize, 2usize),
        (generators::path(4), 2, 1),
        (generators::cycle(4), 2, 2),
        (generators::complete_bipartite(2, 3), 2, 2),
        (generators::star(3), 2, 2),
    ] {
        let game = TupleGame::new(&graph, k, nu).unwrap();
        let ne = a_tuple_bipartite(&game).unwrap();
        let adapter = GameAdapter::new(&game, 50_000).unwrap();
        let ground_truth = adapter.verify(ne.config());
        assert!(
            ground_truth.is_equilibrium(),
            "k = {k}, ν = {nu}, {graph:?}: deviations {:?}",
            ground_truth.deviations
        );
        assert_eq!(
            ground_truth.expected_payoffs[adapter.defender_index()],
            ne.defender_gain()
        );
    }
}

#[test]
fn pure_frontier_agrees_with_gallai_across_families() {
    // Theorem 3.1 existence ⟺ k ≥ ρ(G) = n − μ(G).
    let mut rng = StdRng::seed_from_u64(999);
    for _ in 0..15 {
        let graph = generators::gnp_connected(10, 0.25, &mut rng);
        let rho = minimum_edge_cover(&graph).unwrap().len();
        assert_eq!(rho, graph.vertex_count() - maximum_matching(&graph).len());
        for k in 1..=graph.edge_count() {
            let game = TupleGame::new(&graph, k, 2).unwrap();
            assert_eq!(
                pure_ne_existence(&game).exists(),
                k >= rho,
                "k = {k}, ρ = {rho}"
            );
        }
    }
}

#[test]
fn reduction_round_trip_preserves_everything() {
    let graph = generators::cycle(12);
    let nu = 7;
    let edge_game = TupleGame::edge_model(&graph, nu).unwrap();
    let base = a_tuple_bipartite(&edge_game).unwrap();
    let base_matching = restrict_to_matching(&edge_game, &base).unwrap();
    for k in 1..=6usize {
        let game = TupleGame::new(&graph, k, nu).unwrap();
        let expanded = expand_to_k_matching(&game, &base_matching).unwrap();
        assert_eq!(
            reduction::gain_ratio(&expanded, &base_matching),
            Ratio::from(k),
            "Theorem 4.5 gain factor"
        );
        let back = restrict_to_matching(&edge_game, &expanded).unwrap();
        assert_eq!(back.supports(), base_matching.supports());
        assert_eq!(back.defender_gain(), base_matching.defender_gain());
    }
}

#[test]
fn simulation_tracks_exact_payoffs() {
    let graph = generators::complete_bipartite(3, 5);
    let game = TupleGame::new(&graph, 2, 6).unwrap();
    let ne = a_tuple_bipartite(&game).unwrap();
    let outcome = Simulator::new(&game, ne.config()).run(&SimulationConfig {
        rounds: 50_000,
        seed: 123,
    });
    assert!(outcome.gain_error(ne.defender_gain()) < 0.06);
    let exact_escape = (Ratio::ONE - ne.hit_probability()).to_f64();
    for f in &outcome.escape_frequency {
        assert!((f - exact_escape).abs() < 0.02);
    }
}

#[test]
fn non_bipartite_graphs_reject_gracefully() {
    for graph in [
        generators::cycle(5),
        generators::petersen(),
        generators::complete(4),
    ] {
        let game = TupleGame::new(&graph, 1, 2).unwrap();
        assert!(matches!(
            a_tuple_bipartite(&game),
            Err(CoreError::Graph(defender_graph::GraphError::NotBipartite))
        ));
    }
}

#[test]
fn prelude_surface_is_usable() {
    // Every name the README advertises resolves and interoperates.
    let graph: Graph = GraphBuilder::new(4)
        .add_edge(0, 1)
        .add_edge(1, 2)
        .add_edge(2, 3)
        .build();
    let v: VertexId = VertexId::new(0);
    let e: EdgeId = EdgeId::new(0);
    assert_eq!(graph.endpoints(e).u(), v);
    let m: Matching = hopcroft_karp(
        &graph,
        &[VertexId::new(0), VertexId::new(2)],
        &[VertexId::new(1), VertexId::new(3)],
    );
    assert_eq!(m.len(), 2);
    let cover = koenig_vertex_cover(
        &graph,
        &[VertexId::new(0), VertexId::new(2)],
        &[VertexId::new(1), VertexId::new(3)],
    );
    assert_eq!(cover.cover.len(), 2);
    let t: Tuple = Tuple::single(e);
    assert_eq!(t.k(), 1);
}
